#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace dws::sim {

namespace {
constexpr double kEps = 1e-9;
constexpr unsigned kNoWorker = 0xFFFFFFFFu;
}  // namespace

const ProgramResult& SimResult::program(const std::string& name) const {
  for (const auto& p : programs) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("no program named " + name);
}

struct SimEngine::Impl {
  // ---- static configuration ----
  SimParams params;
  std::vector<SimProgramSpec> specs;
  unsigned k = 0;  // cores
  unsigned m = 0;  // programs

  // ---- shared core allocation table (real implementation) ----
  std::unique_ptr<CoreTableLocal> table_storage;
  CoreTable* table = nullptr;

  // ---- simulated entities ----
  enum class WState : int { kRunnable, kRunning, kSleeping, kWaking, kParked };
  enum class Op : int { kNone, kPop, kSteal, kMigrate, kExec };

  struct WorkerSt {
    unsigned prog = 0;   // program index (0-based)
    CoreId core = 0;
    WState st = WState::kRunnable;
    std::deque<NodeId> pool;  // back = bottom (owner end), front = top
    StealPolicy policy{SchedMode::kDws, 0};
    Op op = Op::kNone;
    double op_left = 0.0;       // remaining latency for kPop/kSteal/kMigrate
    double op_cost = 0.0;       // full planned latency of the current op
    NodeId exec_node = kNoNode;
    NodeId mig_node = kNoNode;  // stolen task in flight during kMigrate
    double exec_work_left = 0.0;  // remaining *work* (unscaled) for kExec
    double seg_slowdown = 1.0;    // cache factor of the planned segment
    // stats
    std::uint64_t tasks = 0, steals = 0, failed = 0, yields = 0, sleeps = 0,
                  wakes = 0, evictions = 0;
    std::uint64_t steals_tier[kNumDistanceTiers] = {0, 0, 0, 0};
    double exec_time = 0.0, cache_penalty = 0.0, steal_overhead = 0.0;
    double mig_time = 0.0;  // transfer cost charged on cross-tier steals
    double slept_at = 0.0;  // time of the last sleep (adaptive T_SLEEP)
  };

  struct CoreSt {
    std::deque<unsigned> runq;  // global worker indices, FIFO
    unsigned running = kNoWorker;
    double quantum_left = 0.0;
    double seg_start = 0.0;
    double seg_len = 0.0;
    std::uint64_t epoch = 0;  // invalidates stale scheduled segments
    double busy_us = 0.0;
    double exec_us = 0.0;
    // cache bookkeeping: cumulative execution time on this core, total and
    // per program (lazy warmth decay reads the difference).
    double exec_total = 0.0;
    std::vector<double> exec_by;  // [program]
  };

  struct SocketSt {
    double exec_total = 0.0;
    std::vector<double> exec_by;  // [program]
  };

  struct ProgSt {
    SimProgramSpec spec;
    ProgramId pid = kNoProgram;  // table id (1-based)
    std::vector<std::uint32_t> base_joins;
    std::vector<std::uint32_t> join_left;
    std::uint32_t tasks_left = 0;
    unsigned runs_done = 0;
    std::vector<double> run_times;
    double run_start = 0.0;
    CoordinatorPolicy policy{1.0};
    std::unique_ptr<CoordinatorDriver> driver;
    std::uint64_t ticks = 0, claims = 0, reclaims = 0, coord_wakes = 0;
    CoreId start_core = 0;
    /// Work-sharing variant (§4.4): the per-program central task FIFO.
    std::deque<NodeId> central;
    /// Adaptive T_SLEEP extension: current program-wide threshold.
    double cur_t_sleep = 0.0;
  };

  std::vector<WorkerSt> workers;  // [prog * k + core]
  std::vector<CoreSt> cores;
  std::vector<SocketSt> sockets;
  std::vector<ProgSt> progs;

  // warmth[core][prog] in [0,1], plus the foreign-time snapshot for lazy
  // decay; same pair per socket.
  std::vector<std::vector<double>> core_warmth, core_foreign_seen;
  std::vector<std::vector<double>> llc_warmth, llc_foreign_seen;

  util::Xoshiro256 rng{0};

  // Machine model shared with the coordinator drivers; matches socket_of.
  Topology topo;

  // ---- event queue ----
  enum class Ev : int { kCoreSeg, kCoordTick, kWake, kSample };
  struct Event {
    double t;
    std::uint64_t seq;
    Ev kind;
    std::uint32_t a;       // core / program / worker index
    std::uint64_t epoch;   // for kCoreSeg
    bool operator>(const Event& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t next_seq = 0;
  double now = 0.0;
  bool finished = false;
  bool hit_limit = false;
  std::vector<TimelineSample> timeline;
  std::vector<TraceEvent> trace;
  bool trace_truncated = false;

  void emit(TraceKind kind, unsigned prog, CoreId core,
            NodeId node = kNoNode) {
    if (!params.collect_trace) return;
    if (trace.size() >= params.trace_capacity) {
      trace_truncated = true;
      return;
    }
    trace.push_back(TraceEvent{now, kind, prog, core, node});
  }

  void push_event(double t, Ev kind, std::uint32_t a, std::uint64_t epoch = 0) {
    events.push(Event{t, next_seq++, kind, a, epoch});
  }

  [[nodiscard]] unsigned widx(unsigned prog, CoreId core) const {
    return prog * k + core;
  }

  // ------------------------------------------------------------------
  Impl(const SimParams& p, std::vector<SimProgramSpec> s)
      : params(p), specs(std::move(s)) {
    k = params.num_cores;
    m = static_cast<unsigned>(specs.size());
    if (k == 0 || m == 0) throw std::invalid_argument("need cores, programs");
    for (double speed : params.core_speeds) {
      if (!(speed > 0.0)) {
        throw std::invalid_argument("core speeds must be positive");
      }
    }
    for (const auto& spec : specs) {
      if (spec.dag == nullptr || spec.dag->empty()) {
        throw std::invalid_argument("program '" + spec.name + "' has no DAG");
      }
      const std::string err = spec.dag->validate();
      if (!err.empty()) {
        throw std::invalid_argument("program '" + spec.name +
                                    "': invalid DAG: " + err);
      }
    }
    rng = util::Xoshiro256(params.seed);
    topo = params.topology();

    table_storage = std::make_unique<CoreTableLocal>(k, m);
    table = &table_storage->table();

    cores.resize(k);
    for (auto& c : cores) c.exec_by.assign(m, 0.0);
    sockets.resize(params.num_sockets);
    for (auto& s2 : sockets) s2.exec_by.assign(m, 0.0);
    core_warmth.assign(k, std::vector<double>(m, 0.0));
    core_foreign_seen.assign(k, std::vector<double>(m, 0.0));
    llc_warmth.assign(params.num_sockets, std::vector<double>(m, 0.0));
    llc_foreign_seen.assign(params.num_sockets, std::vector<double>(m, 0.0));

    progs.resize(m);
    workers.resize(static_cast<std::size_t>(m) * k);

    for (unsigned pi = 0; pi < m; ++pi) {
      ProgSt& p2 = progs[pi];
      p2.spec = specs[pi];
      p2.pid = table->register_program();
      p2.base_joins = p2.spec.dag->join_counts();
      p2.policy = CoordinatorPolicy(params.wake_threshold);
      p2.cur_t_sleep = static_cast<double>(params.effective_t_sleep());

      const bool shares = mode_space_shares(p2.spec.mode);
      if (shares) {
        const auto claimed = table->claim_home_cores(p2.pid);
        if (p2.spec.mode == SchedMode::kEp && claimed.empty()) {
          throw std::invalid_argument("EP program '" + p2.spec.name +
                                      "' has no home cores (m > k?)");
        }
      }
      // Start core: first home core, else round-robin fallback.
      p2.start_core = pi % k;
      for (CoreId c = 0; c < k; ++c) {
        if (table->home_of(c) == p2.pid) {
          p2.start_core = c;
          break;
        }
      }
      if (p2.spec.mode == SchedMode::kDws) {
        p2.driver = std::make_unique<CoordinatorDriver>(
            *table, p2.pid, params.seed ^ (0xC0FFEEULL * (pi + 1)), &topo,
            p2.start_core);
      }

      for (CoreId c = 0; c < k; ++c) {
        WorkerSt& w = workers[widx(pi, c)];
        w.prog = pi;
        w.core = c;
        w.policy = StealPolicy(p2.spec.mode, params.effective_t_sleep());
        switch (p2.spec.mode) {
          case SchedMode::kEp:
            w.st = table->home_of(c) == p2.pid ? WState::kRunnable
                                               : WState::kParked;
            break;
          case SchedMode::kDws:
            w.st = table->user_of(c) == p2.pid ? WState::kRunnable
                                               : WState::kSleeping;
            break;
          default:
            w.st = WState::kRunnable;  // CLASSIC / ABP / DWS-NC time-share
            break;
        }
        if (w.st == WState::kRunnable) cores[c].runq.push_back(widx(pi, c));
      }
    }

    // Seed each program's first run and the coordinator ticks.
    for (unsigned pi = 0; pi < m; ++pi) {
      start_run(pi, widx(pi, progs[pi].start_core));
      if (mode_sleeps(progs[pi].spec.mode)) {
        // Small stagger mimics non-identical process launch instants and
        // keeps tick ordering well-defined without tie storms.
        push_event(params.coordinator_period_us + 17.0 * pi, Ev::kCoordTick,
                   pi);
      }
    }
    for (CoreId c = 0; c < k; ++c) pick_next(c);
    if (params.timeline_sample_period_us > 0.0) {
      push_event(params.timeline_sample_period_us, Ev::kSample, 0);
    }
  }

  void on_sample() {
    TimelineSample sample;
    sample.t_us = now;
    sample.active_workers.resize(m, 0);
    for (unsigned pi = 0; pi < m; ++pi) {
      for (CoreId c = 0; c < k; ++c) {
        const WState st = workers[widx(pi, c)].st;
        if (st == WState::kRunning || st == WState::kRunnable ||
            st == WState::kWaking) {
          ++sample.active_workers[pi];
        }
      }
    }
    sample.free_cores = table->count_free();
    timeline.push_back(std::move(sample));
    push_event(now + params.timeline_sample_period_us, Ev::kSample, 0);
  }

  // ---- program run lifecycle ----

  void start_run(unsigned pi, unsigned start_worker) {
    ProgSt& p = progs[pi];
    p.join_left = p.base_joins;
    p.tasks_left = static_cast<std::uint32_t>(p.spec.dag->size());
    p.run_start = now;
    emit(TraceKind::kRunStart, pi, workers[start_worker].core);
    enqueue_task(p, workers[start_worker], p.spec.dag->root());
    relaunch_activation(pi);
  }

  /// Fig. 3 runs each benchmark binary repeatedly: every repetition is a
  /// fresh program *launch*, and a fresh launch performs the §3.1 initial
  /// allocation — the worker on every home core the program can take
  /// becomes active. Without this, a repetition would inherit the
  /// previous run's sleep state and pay a coordinator-latency ramp the
  /// paper's methodology never measures.
  void relaunch_activation(unsigned pi) {
    ProgSt& p = progs[pi];
    if (mode_space_shares(p.spec.mode)) {
      table->claim_home_cores(p.pid);  // free home cores only; borrowed
                                       // ones return via reclaim (§3.3)
      for (CoreId c = 0; c < k; ++c) {
        if (table->home_of(c) == p.pid && table->user_of(c) == p.pid) {
          wake_worker(widx(pi, c), /*from_coordinator=*/false);
        }
      }
    } else if (p.spec.mode == SchedMode::kDwsNc) {
      // A fresh DWS-NC launch starts all k workers active (time-sharing).
      for (CoreId c = 0; c < k; ++c) {
        wake_worker(widx(pi, c), /*from_coordinator=*/false);
      }
    }
  }

  void finish_run(unsigned pi, unsigned completing_worker) {
    ProgSt& p = progs[pi];
    emit(TraceKind::kRunFinish, pi, workers[completing_worker].core);
    p.run_times.push_back(now - p.run_start);
    ++p.runs_done;
    if (all_targets_met()) {
      finished = true;
      return;
    }
    // Fig. 3: programs re-run back-to-back so execution stays overlapped.
    start_run(pi, completing_worker);
  }

  [[nodiscard]] bool all_targets_met() const {
    for (const auto& p : progs) {
      if (p.runs_done < p.spec.target_runs) return false;
    }
    return true;
  }

  // ---- cache model ----

  [[nodiscard]] double mem_intensity_of(const ProgSt& p, NodeId n) const {
    const double mi = p.spec.dag->node(n).mem_intensity;
    return mi >= 0.0 ? mi : p.spec.default_mem_intensity;
  }

  /// Apply pending foreign-execution decay to warmth[idx][pi], given the
  /// cumulative counters, then return the refreshed warmth.
  static double touch_warmth(std::vector<double>& warmth,
                             std::vector<double>& foreign_seen, unsigned pi,
                             double exec_total, double exec_by_p,
                             double decay_const) {
    const double foreign_now = exec_total - exec_by_p;
    const double delta = foreign_now - foreign_seen[pi];
    if (delta > 0.0) {
      warmth[pi] *= std::exp(-delta / decay_const);
      foreign_seen[pi] = foreign_now;
    }
    return warmth[pi];
  }

  double current_slowdown(const WorkerSt& w) {
    const ProgSt& p = progs[w.prog];
    const double mi = mem_intensity_of(p, w.exec_node);
    if (mi <= 0.0) return 1.0;
    CoreSt& c = cores[w.core];
    const unsigned s = params.socket_of(w.core);
    const double wc =
        touch_warmth(core_warmth[w.core], core_foreign_seen[w.core], w.prog,
                     c.exec_total, c.exec_by[w.prog], params.core_decay_us);
    const double ws =
        touch_warmth(llc_warmth[s], llc_foreign_seen[s], w.prog,
                     sockets[s].exec_total, sockets[s].exec_by[w.prog],
                     params.llc_decay_us);
    return 1.0 + mi * (params.core_miss_penalty * (1.0 - wc) +
                       params.llc_miss_penalty * (1.0 - ws));
  }

  void account_exec(WorkerSt& w, double elapsed) {
    CoreSt& c = cores[w.core];
    const unsigned s = params.socket_of(w.core);
    // Decay first (so our own elapsed time is not counted as foreign),
    // then warm our own entries.
    touch_warmth(core_warmth[w.core], core_foreign_seen[w.core], w.prog,
                 c.exec_total, c.exec_by[w.prog], params.core_decay_us);
    touch_warmth(llc_warmth[s], llc_foreign_seen[s], w.prog,
                 sockets[s].exec_total, sockets[s].exec_by[w.prog],
                 params.llc_decay_us);
    core_warmth[w.core][w.prog] =
        1.0 - (1.0 - core_warmth[w.core][w.prog]) *
                  std::exp(-elapsed / params.core_warmup_us);
    llc_warmth[s][w.prog] = 1.0 - (1.0 - llc_warmth[s][w.prog]) *
                                      std::exp(-elapsed / params.llc_warmup_us);
    c.exec_total += elapsed;
    c.exec_by[w.prog] += elapsed;
    sockets[s].exec_total += elapsed;
    sockets[s].exec_by[w.prog] += elapsed;
    c.exec_us += elapsed;
    w.exec_time += elapsed;
  }

  // ---- core scheduling ----

  void pick_next(CoreId c) {
    CoreSt& core = cores[c];
    core.running = kNoWorker;
    while (!core.runq.empty()) {
      const unsigned wi = core.runq.front();
      core.runq.pop_front();
      core.running = wi;
      core.quantum_left = params.quantum_us;
      workers[wi].st = WState::kRunning;
      if (workers[wi].op == Op::kNone) {
        if (!worker_decide(wi)) {
          // Worker transitioned away (slept/parked); try the next one.
          core.running = kNoWorker;
          continue;
        }
      }
      plan_segment(c);
      return;
    }
  }

  void plan_segment(CoreId c) {
    CoreSt& core = cores[c];
    WorkerSt& w = workers[core.running];
    double dur;
    if (w.op == Op::kExec) {
      w.seg_slowdown = current_slowdown(w);
      // Wall time = work * cache factor / core speed (asymmetric cores).
      const double wall_needed =
          w.exec_work_left * w.seg_slowdown / params.speed_of(c);
      dur = std::min(wall_needed, params.cache_update_granularity_us);
    } else {
      dur = w.op_left;
    }
    const double seg = std::min(dur, core.quantum_left);
    core.seg_start = now;
    core.seg_len = seg;
    ++core.epoch;
    push_event(now + seg, Ev::kCoreSeg, c, core.epoch);
  }

  void preempt(CoreId c) {
    CoreSt& core = cores[c];
    const unsigned wi = core.running;
    workers[wi].st = WState::kRunnable;
    core.runq.push_back(wi);
    pick_next(c);
  }

  /// BWS directed yield (Ding et al.): a thief that cannot find work
  /// donates *its own slice* to a preempted busy worker of its program —
  /// the kernel-assisted yield_to migrates the target onto the caller's
  /// core and runs it there. Crucially, the donation spends only CPU the
  /// caller owns; it never preempts anyone else (doing so livelocks
  /// asymmetric co-runner sets). Returns true if a sibling was migrated
  /// to the front of the caller's run queue; the caller must then
  /// requeue itself and reschedule its core.
  bool bws_yield_to_sibling(CoreId caller_core, unsigned prog) {
    for (CoreId c = 0; c < k; ++c) {
      CoreSt& core = cores[c];
      for (auto it = core.runq.begin(); it != core.runq.end(); ++it) {
        WorkerSt& cand = workers[*it];
        if (cand.prog == prog &&
            (cand.op == Op::kExec || !cand.pool.empty())) {
          const unsigned promoted = *it;
          core.runq.erase(it);
          cand.core = caller_core;  // migrate (cache warmth follows the
                                    // per-core model automatically)
          cores[caller_core].runq.push_front(promoted);
          return true;
        }
      }
    }
    return false;
  }

  /// Decide the next op for worker wi (must be Running with op==kNone).
  /// Returns false when the worker transitioned away from Running
  /// (slept); the caller must then pick another worker for the core.
  bool worker_decide(unsigned wi) {
    WorkerSt& w = workers[wi];
    ProgSt& p = progs[w.prog];

    if (mode_space_shares(p.spec.mode) &&
        table->user_of(w.core) != p.pid) {
      // Our core was reclaimed (or never owned): vacate (§3.3).
      worker_sleep(wi, /*eviction=*/true);
      return false;
    }
    if (p.spec.work_sharing) {
      // Work-sharing (§4.4): one shared FIFO per program. A non-empty
      // queue is a pop; an empty one is the failed-acquisition path that
      // feeds the same StealPolicy (yield / sleep decisions unchanged).
      if (!p.central.empty()) {
        w.op = Op::kPop;
        w.op_left = params.pop_cost_us;
        return true;
      }
      w.op = Op::kSteal;
      const int ws_fails = std::min(w.policy.failed_steals(), 40);
      const double poll_cost =
          params.steal_cost_us *
          std::exp2(static_cast<double>(ws_fails / 4));
      w.op_cost = std::min(poll_cost, params.steal_backoff_cap_us);
      w.op_left = w.op_cost;
      return true;
    }
    if (!w.pool.empty()) {
      w.op = Op::kPop;
      w.op_left = params.pop_cost_us;
      return true;
    }
    // Become a thief. One Algorithm-1 "steal attempt" is modelled as a
    // *victim sweep*: probe the program's other workers in random order
    // and take from the first non-empty pool. Production runtimes count
    // steal failures the same way (TBB scans the arena; BWS counts full
    // sweeps; MIT Cilk's thieves probe at sub-microsecond rate, so 16
    // single-victim failures span only ~20 us of real time — far finer
    // than the coordinator timescale the T_SLEEP threshold is balanced
    // against in §4.3). The sweep resolves at op completion.
    w.op = Op::kSteal;
    // Exponential backoff on sustained failure (as real thieves do):
    // keeps both the simulated machine and the simulator itself from
    // drowning in fruitless probes. With the defaults, T_SLEEP = 16
    // consecutive failed sweeps corresponds to ~1.5 ms of sustained
    // starvation.
    const double sweep_cost =
        params.steal_cost_us * static_cast<double>(k > 1 ? k - 1 : 1);
    const int fails = std::min(w.policy.failed_steals(), 40);
    const double cost = sweep_cost * std::exp2(static_cast<double>(fails / 4));
    w.op_cost = std::min(cost, params.steal_backoff_cap_us);
    w.op_left = w.op_cost;
    return true;
  }

  /// Route a newly enabled task: the enabling worker's own deque under
  /// work-stealing, the program's central FIFO under work-sharing.
  void enqueue_task(ProgSt& p, WorkerSt& enabler, NodeId node) {
    if (p.spec.work_sharing) {
      p.central.push_back(node);
    } else {
      enabler.pool.push_back(node);
    }
  }

  struct SweepResult {
    NodeId node = kNoNode;
    DistanceTier tier = DistanceTier::kVeryNear;
  };

  /// Resolve a steal sweep for worker wi: probe this program's other
  /// workers and steal the oldest task from the first non-empty pool.
  /// Under VictimPolicy::kTiered the probe order is near-first — all
  /// same-group victims, then same-socket, then each remote tier — with a
  /// random rotation within each tier so equally-near victims share the
  /// load; UNIFORM is the historical random-start circular sweep. Returns
  /// the node plus the victim's distance tier (for the per-tier counters
  /// and the migration charge). Under work-sharing the "sweep" is a poll
  /// of the central FIFO.
  SweepResult resolve_steal_sweep(unsigned wi) {
    WorkerSt& w = workers[wi];
    ProgSt& p = progs[w.prog];
    if (p.spec.work_sharing) {
      if (p.central.empty()) return {};
      const NodeId node = p.central.front();
      p.central.pop_front();
      return {node, DistanceTier::kVeryNear};
    }
    if (k == 1) return {};  // no victims exist
    // Iterate the program's k worker slots from a random start (slot
    // index, not core: BWS migration can detach workers from their
    // original cores). Distance is measured between *current* cores for
    // the same reason.
    const unsigned start = static_cast<unsigned>(rng.next_below(k));
    if (params.victim_policy == VictimPolicy::kTiered) {
      for (unsigned tier = 0; tier < kNumDistanceTiers; ++tier) {
        for (unsigned off = 0; off < k; ++off) {
          const unsigned slot = (start + off) % k;
          const unsigned victim_idx = widx(w.prog, slot);
          if (victim_idx == wi) continue;
          WorkerSt& victim = workers[victim_idx];
          const DistanceTier d = topo.distance(w.core, victim.core);
          if (static_cast<unsigned>(d) != tier || victim.pool.empty()) {
            continue;
          }
          const NodeId node = victim.pool.front();
          victim.pool.pop_front();
          return {node, d};
        }
      }
      return {};
    }
    for (unsigned off = 0; off < k; ++off) {
      const unsigned slot = (start + off) % k;
      const unsigned victim_idx = widx(w.prog, slot);
      if (victim_idx == wi) continue;
      WorkerSt& victim = workers[victim_idx];
      if (!victim.pool.empty()) {
        const NodeId node = victim.pool.front();
        victim.pool.pop_front();
        return {node, topo.distance(w.core, victim.core)};
      }
    }
    return {};
  }

  void worker_sleep(unsigned wi, bool eviction) {
    WorkerSt& w = workers[wi];
    ProgSt& p = progs[w.prog];
    w.policy.on_sleep();
    ++w.sleeps;
    if (eviction) ++w.evictions;
    w.st = WState::kSleeping;
    w.op = Op::kNone;
    w.slept_at = now;
    emit(eviction ? TraceKind::kEvicted : TraceKind::kSleep, w.prog, w.core);
    if (mode_space_shares(p.spec.mode)) {
      table->release(w.core, p.pid);  // CAS-guarded; no-op if reclaimed
    }
  }

  /// Adaptive T_SLEEP (§6 extension): called when a worker wakes. A sleep
  /// that lasted less than the short-sleep horizon means the threshold
  /// triggered prematurely — double it (capped); the coordinator tick
  /// decays it back toward the base value.
  void adapt_t_sleep_on_wake(const WorkerSt& w) {
    if (!params.adaptive_t_sleep) return;
    const double horizon = params.adaptive_short_sleep_us > 0.0
                               ? params.adaptive_short_sleep_us
                               : params.coordinator_period_us;
    if (now - w.slept_at >= horizon) return;
    ProgSt& p = progs[w.prog];
    const double cap = 64.0 * static_cast<double>(params.effective_t_sleep());
    p.cur_t_sleep = std::min(cap, p.cur_t_sleep * 2.0);
    apply_t_sleep(w.prog);
  }

  void apply_t_sleep(unsigned pi) {
    const int threshold = static_cast<int>(progs[pi].cur_t_sleep);
    for (CoreId c = 0; c < k; ++c) {
      workers[widx(pi, c)].policy.set_t_sleep(threshold);
    }
  }

  void begin_exec(WorkerSt& w, NodeId node) {
    emit(TraceKind::kTaskStart, w.prog, w.core, node);
    w.policy.on_task_acquired();
    w.op = Op::kExec;
    w.exec_node = node;
    w.exec_work_left = progs[w.prog].spec.dag->node(node).work_us;
  }

  /// Handle completion of the current op of the worker running on core c.
  /// Returns false when the worker left the Running state (yield/sleep):
  /// the core has already been rescheduled.
  bool complete_op(CoreId c) {
    CoreSt& core = cores[c];
    const unsigned wi = core.running;
    WorkerSt& w = workers[wi];

    switch (w.op) {
      case Op::kPop: {
        w.op = Op::kNone;
        ProgSt& p = progs[w.prog];
        if (p.spec.work_sharing) {
          if (!p.central.empty()) {
            const NodeId node = p.central.front();  // shared FIFO
            p.central.pop_front();
            begin_exec(w, node);
            return true;
          }
        } else if (!w.pool.empty()) {
          const NodeId node = w.pool.back();  // own deque, LIFO
          w.pool.pop_back();
          begin_exec(w, node);
          return true;
        }
        // Raced empty (a thief drained us mid-pop): fall through to a
        // fresh decision (which will go steal/poll).
        return worker_decide(wi) || (pick_next(c), false);
      }
      case Op::kSteal: {
        w.op = Op::kNone;
        w.steal_overhead += w.op_cost;
        if (const SweepResult sw = resolve_steal_sweep(wi);
            sw.node != kNoNode) {
          // A successful central-queue poll (work-sharing) is a pop, not
          // a steal; only deque sweeps count toward the steal stats.
          if (!progs[w.prog].spec.work_sharing) {
            ++w.steals;
            ++w.steals_tier[static_cast<int>(sw.tier)];
            emit(TraceKind::kSteal, w.prog, w.core, sw.node);
            const double mig =
                params.steal_tier_migration_us[static_cast<int>(sw.tier)];
            if (mig > 0.0) {
              // The stolen task's working set crosses the interconnect
              // before execution can begin (tier-dependent NUMA cost).
              w.op = Op::kMigrate;
              w.op_cost = mig;
              w.op_left = mig;
              w.mig_node = sw.node;
              w.mig_time += mig;
              return true;
            }
          }
          begin_exec(w, sw.node);
          return true;
        }
        ++w.failed;
        switch (w.policy.on_steal_failed()) {
          case StealOutcome::kRetry:
            return worker_decide(wi) || (pick_next(c), false);
          case StealOutcome::kYield:
            ++w.yields;
            if (progs[w.prog].spec.mode == SchedMode::kBws) {
              // BWS's directed yield: migrate a preempted busy sibling
              // here and hand it this slice, rather than yielding to
              // whoever the OS would run next.
              bws_yield_to_sibling(c, w.prog);
            }
            w.st = WState::kRunnable;
            core.runq.push_back(wi);
            pick_next(c);
            return false;
          case StealOutcome::kSleep:
            worker_sleep(wi, /*eviction=*/false);
            pick_next(c);
            return false;
        }
        return true;
      }
      case Op::kMigrate: {
        // Transfer finished: the stolen task is now local; run it.
        w.op = Op::kNone;
        const NodeId node = w.mig_node;
        w.mig_node = kNoNode;
        begin_exec(w, node);
        return true;
      }
      case Op::kExec: {
        const NodeId done = w.exec_node;
        w.op = Op::kNone;
        w.exec_node = kNoNode;
        ++w.tasks;
        emit(TraceKind::kTaskFinish, w.prog, w.core, done);
        ProgSt& p = progs[w.prog];
        const DagNode& node = p.spec.dag->node(done);
        for (NodeId child : node.spawns) enqueue_task(p, w, child);
        if (node.continuation != kNoNode) {
          if (--p.join_left[node.continuation] == 0) {
            enqueue_task(p, w, node.continuation);
          }
        }
        if (--p.tasks_left == 0) {
          finish_run(w.prog, wi);
          if (finished) return true;  // engine stops; no need to continue
        }
        return worker_decide(wi) || (pick_next(c), false);
      }
      case Op::kNone:
        return true;  // nothing to complete (defensive)
    }
    return true;
  }

  // ---- event handlers ----

  /// Charge `elapsed` wall time of the running worker's current op (op
  /// progress, quantum, cache model). Returns true when the op finished.
  bool advance_running(CoreId c, double elapsed) {
    CoreSt& core = cores[c];
    WorkerSt& w = workers[core.running];
    core.quantum_left -= elapsed;
    core.busy_us += elapsed;
    if (w.op == Op::kExec) {
      const double work_done = elapsed * params.speed_of(c) / w.seg_slowdown;
      w.exec_work_left -= work_done;
      // Extra wall time attributable to cold caches (speed-independent).
      w.cache_penalty += elapsed - elapsed / w.seg_slowdown;
      account_exec(w, elapsed);
      return w.exec_work_left <= kEps;
    }
    w.op_left -= elapsed;
    return w.op_left <= kEps;
  }

  void on_core_seg(CoreId c, std::uint64_t epoch) {
    CoreSt& core = cores[c];
    if (epoch != core.epoch || core.running == kNoWorker) return;  // stale
    const bool op_done = advance_running(c, core.seg_len);

    if (!op_done) {
      // Quantum expired mid-op: preempt (op progress is retained).
      preempt(c);
      return;
    }
    if (!complete_op(c)) return;  // core already rescheduled
    if (finished) return;
    if (core.running == kNoWorker) return;  // defensive
    if (core.quantum_left <= kEps) {
      preempt(c);
    } else {
      plan_segment(c);
    }
  }

  void on_coord_tick(unsigned pi) {
    ProgSt& p = progs[pi];
    ++p.ticks;

    if (params.adaptive_t_sleep) {
      // Multiplicative decay back toward the base threshold: premature
      // sleeps push the threshold up quickly; calm periods relax it.
      const auto base = static_cast<double>(params.effective_t_sleep());
      const double decayed = std::max(base, p.cur_t_sleep * 0.97);
      if (decayed != p.cur_t_sleep) {
        p.cur_t_sleep = decayed;
        apply_t_sleep(pi);
      }
    }

    DemandSnapshot s;
    unsigned sleeping = 0, active = 0;
    std::uint64_t backlog = p.central.size();  // work-sharing FIFO (if any)
    for (CoreId c = 0; c < k; ++c) {
      const WorkerSt& w = workers[widx(pi, c)];
      backlog += w.pool.size();
      switch (w.st) {
        case WState::kSleeping: ++sleeping; break;
        case WState::kParked: break;
        default: ++active; break;
      }
    }
    s.queued_tasks = backlog;
    s.active_workers = active;
    s.sleeping_workers = sleeping;
    if (p.driver) {
      const DemandSnapshot cs = p.driver->snapshot_cores();
      s.free_cores = cs.free_cores;
      s.reclaimable_cores =
          params.disable_reclaim ? 0 : cs.reclaimable_cores;
    } else {
      s.free_cores = sleeping;  // DWS-NC: wake in place
      s.reclaimable_cores = 0;
    }

    const WakeDecision d = p.policy.decide(s);
    if (const char* dbg = getenv("DWS_SIM_TRACE"); dbg && *dbg) {
      fprintf(stderr, "t=%.1fms p=%u Nb=%llu Na=%u slp=%u Nf=%u Nr=%u -> free=%u recl=%u\n",
              now/1000.0, pi, (unsigned long long)s.queued_tasks, s.active_workers,
              s.sleeping_workers, s.free_cores, s.reclaimable_cores,
              d.wake_on_free, d.wake_on_reclaim);
    }
    if (d.total() > 0) {
      if (p.driver) {
        const AcquireResult won = p.driver->acquire(d);
        p.claims += won.claimed.size();
        p.reclaims += won.reclaimed.size();
        for (CoreId c : won.claimed) {
          emit(TraceKind::kClaim, pi, c);
          wake_worker(widx(pi, c));
        }
        for (CoreId c : won.reclaimed) {
          emit(TraceKind::kReclaim, pi, c);
          wake_worker(widx(pi, c));
        }
      } else {
        unsigned need = d.total();
        for (CoreId c = 0; c < k && need > 0; ++c) {
          const unsigned wi = widx(pi, c);
          if (workers[wi].st == WState::kSleeping) {
            wake_worker(wi);
            --need;
          }
        }
      }
    }
    push_event(now + params.coordinator_period_us, Ev::kCoordTick, pi);
  }

  void wake_worker(unsigned wi, bool from_coordinator = true) {
    WorkerSt& w = workers[wi];
    if (w.st != WState::kSleeping) return;
    w.st = WState::kWaking;
    ++w.wakes;
    emit(TraceKind::kWake, w.prog, w.core);
    if (from_coordinator) ++progs[w.prog].coord_wakes;
    push_event(now + params.wake_latency_us, Ev::kWake, wi);
  }

  void on_wake(unsigned wi) {
    WorkerSt& w = workers[wi];
    if (w.st != WState::kWaking) return;  // defensive
    w.st = WState::kRunnable;
    adapt_t_sleep_on_wake(w);
    CoreSt& core = cores[w.core];
    core.runq.push_back(wi);
    if (core.running == kNoWorker) pick_next(w.core);
  }

  // ---- main loop ----

  SimResult run() {
    while (!events.empty() && !finished) {
      const Event ev = events.top();
      events.pop();
      if (ev.t > params.max_sim_time_us) {
        hit_limit = true;
        break;
      }
      now = ev.t;
      switch (ev.kind) {
        case Ev::kCoreSeg: on_core_seg(ev.a, ev.epoch); break;
        case Ev::kCoordTick: on_coord_tick(ev.a); break;
        case Ev::kWake: on_wake(ev.a); break;
        case Ev::kSample: on_sample(); break;
      }
    }
    if (!finished && !hit_limit) {
      // The event queue drained with work outstanding: a scheduling
      // deadlock (should be impossible; surfaced loudly for tests).
      throw std::logic_error("simulation deadlocked: event queue empty");
    }

    SimResult result;
    result.total_time_us = now;
    result.hit_time_limit = hit_limit;
    result.timeline = std::move(timeline);
    result.trace = std::move(trace);
    result.trace_truncated = trace_truncated;
    result.core_busy_us.reserve(k);
    result.core_exec_us.reserve(k);
    for (const auto& c : cores) {
      result.core_busy_us.push_back(c.busy_us);
      result.core_exec_us.push_back(c.exec_us);
    }
    for (unsigned pi = 0; pi < m; ++pi) {
      const ProgSt& p = progs[pi];
      ProgramResult r;
      r.name = p.spec.name;
      r.run_times_us = p.run_times;
      const unsigned n =
          std::min<unsigned>(p.spec.target_runs,
                             static_cast<unsigned>(p.run_times.size()));
      if (n > 0) {
        double sum = 0.0;
        for (unsigned i = 0; i < n; ++i) sum += p.run_times[i];
        r.mean_run_time_us = sum / n;  // Eq. 2
      }
      r.coordinator_ticks = p.ticks;
      r.cores_claimed = p.claims;
      r.cores_reclaimed = p.reclaims;
      for (CoreId c = 0; c < k; ++c) {
        const WorkerSt& w = workers[widx(pi, c)];
        r.tasks_executed += w.tasks;
        r.steals += w.steals;
        r.failed_steals += w.failed;
        r.yields += w.yields;
        r.sleeps += w.sleeps;
        r.wakes += w.wakes;
        r.evictions += w.evictions;
        r.exec_time_us += w.exec_time;
        r.cache_penalty_us += w.cache_penalty;
        r.steal_overhead_us += w.steal_overhead;
        r.migration_us += w.mig_time;
        for (unsigned t = 0; t < kNumDistanceTiers; ++t) {
          r.steals_by_tier[t] += w.steals_tier[t];
        }
      }
      result.programs.push_back(std::move(r));
    }
    return result;
  }
};

SimEngine::SimEngine(const SimParams& params, std::vector<SimProgramSpec> specs)
    : impl_(std::make_unique<Impl>(params, std::move(specs))) {}

SimEngine::~SimEngine() = default;

SimResult SimEngine::run() { return impl_->run(); }

SimResult simulate_solo(const SimParams& params, const SimProgramSpec& spec) {
  SimEngine engine(params, {spec});
  return engine.run();
}

}  // namespace dws::sim
