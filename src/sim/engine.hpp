// Deterministic discrete-event simulator of m work-stealing programs
// co-running on a k-core machine.
//
// Faithfulness to the paper's system:
//  * every program has one worker per core (m×k simulated workers, §2);
//  * workers run Algorithm 1, driven by the *same* StealPolicy class the
//    real runtime uses, with per-op costs (deque pop, steal attempt);
//  * the OS layer time-shares each core round-robin with a quantum; ABP
//    yield() requeues the caller at the tail of its core's run queue;
//  * DWS coordinators tick every T µs and run the *same*
//    CoordinatorPolicy/CoordinatorDriver against a real CoreTable;
//  * a two-level cache-warmth model (private per-core + per-socket LLC)
//    slows memory-intensive tasks down when another program's execution
//    has evicted this program's working set (§2.1 drawback 2, §4.1 p-7).
//
// Everything is seeded and event-ordered; two runs with identical inputs
// produce identical outputs bit-for-bit.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/coordinator_policy.hpp"
#include "core/core_table.hpp"
#include "core/steal_policy.hpp"
#include "core/types.hpp"
#include "sim/dag.hpp"
#include "sim/params.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace dws::sim {

/// One simulated work-stealing program.
struct SimProgramSpec {
  std::string name;
  SchedMode mode = SchedMode::kDws;
  const TaskDag* dag = nullptr;  ///< must outlive the engine
  /// The program repeatedly re-runs its DAG (Fig. 3 methodology); the
  /// simulation ends when every program has completed target_runs.
  unsigned target_runs = 1;
  /// mem_intensity applied to DAG nodes that do not specify their own.
  double default_mem_intensity = 0.3;
  /// §4.4: run this program under *work-sharing* instead of
  /// work-stealing — spawned tasks go to a per-program central FIFO that
  /// every worker pops from; a "failed steal" becomes a failed poll of
  /// the central queue. Sleep/wake and the coordinator operate
  /// unchanged, demonstrating the paper's claim that DWS's demand
  /// awareness transfers to other dynamic load-balancing models.
  bool work_sharing = false;
};

struct ProgramResult {
  std::string name;
  std::vector<double> run_times_us;  ///< per completed repetition
  double mean_run_time_us = 0.0;     ///< Eq. 2 over the first target_runs
  std::uint64_t tasks_executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t failed_steals = 0;
  std::uint64_t yields = 0;
  std::uint64_t sleeps = 0;
  std::uint64_t wakes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t coordinator_ticks = 0;
  std::uint64_t cores_claimed = 0;
  std::uint64_t cores_reclaimed = 0;
  double exec_time_us = 0.0;          ///< wall time spent executing tasks
  double cache_penalty_us = 0.0;      ///< exec time lost to cold caches
  double steal_overhead_us = 0.0;     ///< wall time spent on steal attempts
  /// Locality breakdown: successful steals by the victim's distance tier
  /// (VERYNEAR..VERYFAR; sums to `steals`), and the total transfer cost
  /// charged for them (steal_tier_migration_us).
  std::uint64_t steals_by_tier[kNumDistanceTiers] = {0, 0, 0, 0};
  double migration_us = 0.0;
};

/// One timeline sample (taken every timeline_sample_period_us when that
/// parameter is positive): how many workers each program had active, and
/// how many cores were free in the allocation table.
struct TimelineSample {
  double t_us = 0.0;
  std::vector<unsigned> active_workers;  ///< per program
  unsigned free_cores = 0;
};

struct SimResult {
  std::vector<ProgramResult> programs;
  double total_time_us = 0.0;
  std::vector<double> core_busy_us;      ///< per-core total occupied time
  std::vector<double> core_exec_us;      ///< per-core productive exec time
  bool hit_time_limit = false;           ///< stopped at max_sim_time_us
  std::vector<TimelineSample> timeline;  ///< empty unless sampling enabled
  std::vector<TraceEvent> trace;         ///< empty unless collect_trace
  bool trace_truncated = false;          ///< trace hit trace_capacity

  [[nodiscard]] const ProgramResult& program(const std::string& name) const;
};

class SimEngine {
 public:
  SimEngine(const SimParams& params, std::vector<SimProgramSpec> specs);
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;
  ~SimEngine();

  /// Run to completion (or the time limit). Call once.
  SimResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience: simulate one program solo on the machine (baseline runs).
SimResult simulate_solo(const SimParams& params, const SimProgramSpec& spec);

}  // namespace dws::sim
