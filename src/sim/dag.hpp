// Fork-join task DAGs for the simulator.
//
// A DagNode carries its execution cost and memory intensity plus the
// dynamic-spawning structure work-stealing actually sees: when a node
// finishes executing, its `spawns` are pushed onto the executing worker's
// deque, and its `continuation` (if any) receives one join signal; a
// continuation with all signals received is pushed onto the deque of the
// worker that delivered the last signal (the Cilk steal-the-continuation
// discipline, approximated in a child-stealing runtime).
//
// Well-formedness: every non-root node is enabled exactly once — either
// spawned by exactly one node or enabled as a continuation with at least
// one join predecessor — and the graph is acyclic. validate() checks this.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dws::sim {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

struct DagNode {
  /// Execution cost at full cache warmth, virtual microseconds.
  double work_us = 1.0;
  /// 0 = pure compute; 1 = fully memory-bound. <0 means "use the
  /// program-level default".
  double mem_intensity = -1.0;
  /// Nodes pushed to the executing worker's deque when this node finishes
  /// (in order: spawns[0] ends up deepest, so thieves steal it first).
  std::vector<NodeId> spawns;
  /// Join successor: receives one signal when this node finishes.
  NodeId continuation = kNoNode;
};

class TaskDag {
 public:
  TaskDag() = default;

  NodeId add_node(double work_us, double mem_intensity = -1.0) {
    nodes_.push_back(DagNode{work_us, mem_intensity, {}, kNoNode});
    return static_cast<NodeId>(nodes_.size() - 1);
  }

  void add_spawn(NodeId parent, NodeId child) {
    nodes_[parent].spawns.push_back(child);
  }
  void set_continuation(NodeId node, NodeId continuation) {
    nodes_[node].continuation = continuation;
  }
  void set_root(NodeId root) noexcept { root_ = root; }

  [[nodiscard]] NodeId root() const noexcept { return root_; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] const DagNode& node(NodeId id) const { return nodes_[id]; }

  /// Work of all nodes (T_1, the serial execution time).
  [[nodiscard]] double total_work() const;

  /// Length of the longest path (T_inf, the critical path / span),
  /// following both spawn and join edges.
  [[nodiscard]] double critical_path() const;

  /// Join fan-in per node: how many nodes name it as their continuation.
  [[nodiscard]] std::vector<std::uint32_t> join_counts() const;

  /// Predecessors per node: the nodes that spawn it or signal it as
  /// their continuation — i.e. the dependence edges a replay of the DAG
  /// must respect. Used by the race-certification replay (apps/dag_replay)
  /// to annotate each node's "reads" of its predecessors' results.
  [[nodiscard]] std::vector<std::vector<NodeId>> predecessors() const;

  /// Verify well-formedness; returns an empty string when valid, else a
  /// human-readable description of the first defect found.
  [[nodiscard]] std::string validate() const;

 private:
  std::vector<DagNode> nodes_;
  NodeId root_ = kNoNode;
};

}  // namespace dws::sim
