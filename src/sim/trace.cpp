#include "sim/trace.hpp"

#include <ostream>

namespace dws::sim {

const char* to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kTaskStart: return "task_start";
    case TraceKind::kTaskFinish: return "task_finish";
    case TraceKind::kSteal: return "steal";
    case TraceKind::kSleep: return "sleep";
    case TraceKind::kEvicted: return "evicted";
    case TraceKind::kWake: return "wake";
    case TraceKind::kClaim: return "claim";
    case TraceKind::kReclaim: return "reclaim";
    case TraceKind::kRunStart: return "run_start";
    case TraceKind::kRunFinish: return "run_finish";
  }
  return "?";
}

void write_trace_jsonl(std::ostream& os,
                       const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) {
    os << "{\"t_us\":" << e.t_us << ",\"kind\":\"" << to_string(e.kind)
       << "\",\"prog\":" << e.prog << ",\"core\":" << e.core;
    if (e.node != kNoNode) os << ",\"node\":" << e.node;
    os << "}\n";
  }
}

}  // namespace dws::sim
