// Parameters of the simulated multi-core machine and scheduling runtime.
//
// The defaults model the paper's testbed (2x Xeon E5620: 16 logical cores
// in 2 sockets) and its software configuration (T_SLEEP = k, coordinator
// period T = 10 ms). Costs are order-of-magnitude realistic for 2010s x86
// (a steal is a cross-core cache-line bounce; a wake is a futex syscall).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/topology.hpp"
#include "core/types.hpp"

namespace dws::sim {

struct SimParams {
  // ---- Machine ----
  unsigned num_cores = 16;
  unsigned num_sockets = 2;  ///< cores are split contiguously across sockets
  /// OS round-robin time slice per core (Linux CFS-era granularity).
  double quantum_us = 4000.0;
  /// Per-core speed factors for asymmetric machines (§4.4 discussion /
  /// §6 future work): task progress per wall-microsecond on that core.
  /// Empty (default) = symmetric machine, all cores at 1.0. Since a
  /// program's home partition is the contiguous block matching its
  /// registration order, callers realize "compute-bound programs take
  /// the fast cores" by listing fast cores first and registering the
  /// compute-bound program first.
  std::vector<double> core_speeds;

  // ---- Runtime operation costs (virtual microseconds) ----
  double pop_cost_us = 0.2;     ///< own-deque pop
  double steal_cost_us = 1.5;   ///< cross-core steal attempt (hit or miss)
  double wake_latency_us = 8.0; ///< sleep->running transition (futex wake)
  /// Exponential backoff on consecutive failed steals (MIT Cilk paces its
  /// thieves the same way): attempt cost = steal_cost_us * 2^(failed/2),
  /// capped here. Calibration note: with the defaults, accumulating
  /// T_SLEEP = 16 consecutive failures takes ~0.8 ms of *sustained*
  /// idleness — longer than the sub-millisecond tail of a parallel-for
  /// phase (so workers survive barriers, matching the paper's §4.4
  /// no-single-program-degradation claim) but far shorter than a genuine
  /// low-demand period (a serial merge, a narrow factorization tail), so
  /// cores are still released exactly when a co-runner could use them.
  double steal_backoff_cap_us = 500.0;
  /// Victim ordering for steal sweeps: TIERED probes same-socket victims
  /// before remote ones (core/victim_order.hpp tier order); UNIFORM is
  /// the historical random-start circular sweep.
  VictimPolicy victim_policy = VictimPolicy::kTiered;
  /// One-off transfer cost charged when a steal *succeeds*, indexed by
  /// the victim's distance tier (VERYNEAR..VERYFAR): pulling the task's
  /// working set across the interconnect costs real time, which is what
  /// makes near-first victim ordering pay off. All-zero by default so the
  /// paper-reproduction figures are untouched; the locality experiments
  /// (bench_locality) turn it on explicitly. Order-of-magnitude guidance:
  /// an LLC-local transfer is free-ish, a cross-socket one costs a few
  /// steal_cost_us.
  double steal_tier_migration_us[kNumDistanceTiers] = {0.0, 0.0, 0.0, 0.0};

  // ---- Cache model ----
  /// Execution time needed to warm a cold private cache to ~63% warmth.
  double core_warmup_us = 1500.0;
  /// Foreign execution time that cools a warm private cache to ~37%.
  double core_decay_us = 1500.0;
  /// Same pair for the per-socket shared LLC (bigger => slower to warm
  /// and slower to thrash).
  double llc_warmup_us = 12000.0;
  double llc_decay_us = 12000.0;
  /// Max slowdown contributions at fully cold cache for a task with
  /// mem_intensity = 1: effective_time = work * (1 + mi*(core_pen*(1-w_c)
  /// + llc_pen*(1-w_s))).
  double core_miss_penalty = 0.8;
  double llc_miss_penalty = 0.7;
  /// Exec segments are capped at this length so the piecewise-constant
  /// cache factor tracks warmth evolution.
  double cache_update_granularity_us = 500.0;

  // ---- Scheduling policy knobs (mirror Config) ----
  int t_sleep = -1;                     ///< -1 => k (§3.4)
  double coordinator_period_us = 10000; ///< T = 10 ms (§3.4)
  double wake_threshold = 1.0;
  /// Ablation: when true, DWS coordinators never reclaim lent home cores
  /// (N_r forced to 0) — isolates the value of the take-back constraint.
  bool disable_reclaim = false;
  /// Extension (§6 future work): adapt T_SLEEP online per program. A
  /// worker woken less than adaptive_short_sleep_us after it slept was
  /// put to sleep prematurely: the program's threshold doubles (capped
  /// at 64k); each coordinator tick decays it multiplicatively back
  /// toward the base value. Off by default (the paper uses a fixed k).
  bool adaptive_t_sleep = false;
  /// "Premature sleep" horizon; <= 0 selects the coordinator period.
  double adaptive_short_sleep_us = -1.0;

  // ---- Simulation control ----
  std::uint64_t seed = 0xD5EED;
  /// Hard stop; exceeding it marks the result as deadlocked/incomplete.
  double max_sim_time_us = 4.0e9;
  /// When > 0, record a timeline sample (per-program active worker
  /// counts + free cores) every this many virtual microseconds.
  double timeline_sample_period_us = 0.0;
  /// Record a full scheduling-event trace into SimResult::trace (see
  /// sim/trace.hpp). Bounded by trace_capacity; recording stops silently
  /// at the cap (the result notes truncation).
  bool collect_trace = false;
  std::size_t trace_capacity = 1u << 20;

  [[nodiscard]] int effective_t_sleep() const noexcept {
    return t_sleep >= 0 ? t_sleep : static_cast<int>(num_cores);
  }
  [[nodiscard]] unsigned socket_of(CoreId core) const noexcept {
    const unsigned per = (num_cores + num_sockets - 1) / num_sockets;
    return core / per;
  }
  /// The machine model matching this parameter set (same contiguous
  /// core-to-socket split as socket_of).
  [[nodiscard]] Topology topology() const {
    return Topology::synthetic(num_cores, num_sockets);
  }
  [[nodiscard]] double speed_of(CoreId core) const noexcept {
    return core < core_speeds.size() ? core_speeds[core] : 1.0;
  }
};

}  // namespace dws::sim
