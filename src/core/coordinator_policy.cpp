#include "core/coordinator_policy.hpp"

#include <signal.h>

#include <algorithm>
#include <cerrno>
#include <cmath>

namespace dws {

WakeDecision CoordinatorPolicy::decide(const DemandSnapshot& s) const noexcept {
  WakeDecision d;
  if (s.queued_tasks == 0 || s.sleeping_workers == 0) return d;

  // Eq. 1: N_w = N_b / N_a. With no active workers the program is stalled
  // (every worker slept while tasks remained or arrived); the backlog
  // itself is then the demand.
  const double backlog_per_worker =
      s.active_workers > 0 ? static_cast<double>(s.queued_tasks) /
                                 static_cast<double>(s.active_workers)
                           : static_cast<double>(s.queued_tasks);
  if (backlog_per_worker < wake_threshold_) return d;
  // Round to the nearest worker. Truncation here silently turned any
  // sub-1 demand that passed a wake_threshold < 1 into "wake zero", which
  // made such thresholds inert; rounding keeps Eq. 1's intent, and a
  // demand that still rounds to zero genuinely wakes no one.
  const auto n_w_rounded = std::llround(backlog_per_worker);
  if (n_w_rounded <= 0) return d;
  auto n_w = static_cast<unsigned>(n_w_rounded);

  // We cannot usefully wake more workers than are asleep.
  n_w = std::min(n_w, s.sleeping_workers);

  const unsigned n_f = s.free_cores;
  const unsigned n_r = s.reclaimable_cores;
  if (n_w <= n_f) {
    // Case 1: enough free cores for everyone we want to wake.
    d.wake_on_free = n_w;
  } else if (n_w <= n_f + n_r) {
    // Case 2: top up with our own cores currently lent out.
    d.wake_on_free = n_f;
    d.wake_on_reclaim = n_w - n_f;
  } else {
    // Case 3: demand exceeds what constraint 3 lets us take; grab all free
    // cores and everything of ours that is reclaimable, nothing more.
    d.wake_on_free = n_f;
    d.wake_on_reclaim = n_r;
  }
  return d;
}

CoordinatorDriver::CoordinatorDriver(CoreTable& table, ProgramId pid,
                                     std::uint64_t seed)
    : CoordinatorDriver(table, pid, seed, nullptr, 0) {}

CoordinatorDriver::CoordinatorDriver(CoreTable& table, ProgramId pid,
                                     std::uint64_t seed, const Topology* topo,
                                     CoreId home_core)
    : table_(&table), pid_(pid), topo_(topo), home_core_(home_core) {
  (void)seed;  // selection is deterministic now; see class comment
}

DemandSnapshot CoordinatorDriver::snapshot_cores() const noexcept {
  DemandSnapshot s;
  s.free_cores = table_->count_free();
  s.reclaimable_cores = table_->count_borrowed_from(pid_);
  return s;
}

void CoordinatorDriver::order_candidates(std::vector<CoreId>& cores) const {
  // free_cores()/borrowed_home_cores() scan the table in slot order, so
  // the input is already id-ascending — but never rely on that: the
  // tie-break is this sort, not the producer's iteration order.
  std::sort(cores.begin(), cores.end(), [this](CoreId a, CoreId b) {
    if (topo_ != nullptr) {
      const auto ta = topo_->distance(home_core_, a);
      const auto tb = topo_->distance(home_core_, b);
      if (ta != tb) return ta < tb;
    }
    return a < b;
  });
}

AcquireResult CoordinatorDriver::acquire(const WakeDecision& decision) {
  AcquireResult won;

  if (decision.wake_on_free > 0) {
    std::vector<CoreId> free = table_->free_cores();
    order_candidates(free);
    unsigned need = decision.wake_on_free;
    for (CoreId c : free) {
      if (need == 0) break;
      if (table_->try_claim(c, pid_)) {
        won.claimed.push_back(c);
        --need;
      }
      // A lost CAS means another coordinator raced us to this core; we
      // simply move on — constraint 3 forbids taking non-free cores.
    }
  }

  if (decision.wake_on_reclaim > 0) {
    std::vector<CoreId> mine = table_->borrowed_home_cores(pid_);
    order_candidates(mine);
    unsigned need = decision.wake_on_reclaim;
    for (CoreId c : mine) {
      if (need == 0) break;
      if (table_->try_reclaim(c, pid_)) {
        won.reclaimed.push_back(c);
        --need;
      }
    }
  }
  return won;
}

namespace {
bool default_alive_probe(std::uint32_t os_pid) {
  // kill(pid, 0) delivers nothing but performs the existence check.
  // EPERM means "exists but not ours" — still alive. Only ESRCH (or any
  // other failure, conservatively treated as alive) clears the probe.
  if (::kill(static_cast<pid_t>(os_pid), 0) == 0) return true;
  return errno != ESRCH;
}
}  // namespace

StaleSweeper::StaleSweeper(CoreTable& table, ProgramId self,
                           unsigned stale_periods)
    : StaleSweeper(table, self, stale_periods, &default_alive_probe) {}

StaleSweeper::StaleSweeper(CoreTable& table, ProgramId self,
                           unsigned stale_periods, AliveProbe probe)
    : table_(&table),
      self_(self),
      stale_periods_(stale_periods),
      alive_(std::move(probe)) {}

StaleSweepResult StaleSweeper::sweep() {
  StaleSweepResult result;
  if (stale_periods_ == 0) return result;  // sweeping disabled
  const unsigned last = std::min(table_->registered_programs(),
                                 CoreTable::kLivenessSlots);
  if (seen_.size() < static_cast<std::size_t>(last) + 1) {
    seen_.resize(static_cast<std::size_t>(last) + 1);
  }
  for (ProgramId p = 1; p <= last; ++p) {
    if (p == self_) continue;
    const std::uint32_t os_pid = table_->liveness_os_pid(p);
    if (os_pid == 0) {
      // No liveness evidence: unbound, cleanly exited, or already swept.
      seen_[p] = Observation{};
      continue;
    }
    const std::uint64_t epoch = table_->liveness_epoch(p);
    Observation& obs = seen_[p];
    if (os_pid != obs.os_pid) {
      // The slot is bound to a different process than the one we were
      // watching (first sighting, or a rebind after the predecessor died
      // or exited). Its first epoch may collide with the predecessor's
      // last observed one, so restart the stall clock unconditionally —
      // a fresh binding deserves a full stale_periods_ budget.
      obs = Observation{epoch, os_pid, 0};
      continue;
    }
    if (epoch != obs.epoch) {  // heartbeat advanced: healthy
      obs.epoch = epoch;
      obs.stalled = 0;
      continue;
    }
    if (++obs.stalled < stale_periods_) continue;
    if (alive_(os_pid)) {
      // Stalled but the process exists (wedged, descheduled, or simply a
      // mode without a coordinator). Never sweep a live program — restart
      // the stall clock and keep watching.
      obs.stalled = 0;
      continue;
    }
    // Confirmed dead. Race other survivors for the record; the CAS winner
    // is the unique recoverer, so cores are counted exactly once.
    if (!table_->retire_liveness(p, os_pid)) continue;
    result.declared_dead.push_back(p);
    std::vector<CoreId> freed = table_->force_release_all(p);
    result.freed.insert(result.freed.end(), freed.begin(), freed.end());
  }
  return result;
}

}  // namespace dws
