#include "core/coordinator_policy.hpp"

#include <algorithm>

namespace dws {

WakeDecision CoordinatorPolicy::decide(const DemandSnapshot& s) const noexcept {
  WakeDecision d;
  if (s.queued_tasks == 0 || s.sleeping_workers == 0) return d;

  // Eq. 1: N_w = N_b / N_a. With no active workers the program is stalled
  // (every worker slept while tasks remained or arrived); the backlog
  // itself is then the demand.
  const double backlog_per_worker =
      s.active_workers > 0 ? static_cast<double>(s.queued_tasks) /
                                 static_cast<double>(s.active_workers)
                           : static_cast<double>(s.queued_tasks);
  if (backlog_per_worker < wake_threshold_) return d;
  auto n_w = static_cast<unsigned>(backlog_per_worker);

  // We cannot usefully wake more workers than are asleep.
  n_w = std::min(n_w, s.sleeping_workers);

  const unsigned n_f = s.free_cores;
  const unsigned n_r = s.reclaimable_cores;
  if (n_w <= n_f) {
    // Case 1: enough free cores for everyone we want to wake.
    d.wake_on_free = n_w;
  } else if (n_w <= n_f + n_r) {
    // Case 2: top up with our own cores currently lent out.
    d.wake_on_free = n_f;
    d.wake_on_reclaim = n_w - n_f;
  } else {
    // Case 3: demand exceeds what constraint 3 lets us take; grab all free
    // cores and everything of ours that is reclaimable, nothing more.
    d.wake_on_free = n_f;
    d.wake_on_reclaim = n_r;
  }
  return d;
}

CoordinatorDriver::CoordinatorDriver(CoreTable& table, ProgramId pid,
                                     std::uint64_t seed)
    : table_(&table), pid_(pid), rng_(seed) {}

DemandSnapshot CoordinatorDriver::snapshot_cores() const noexcept {
  DemandSnapshot s;
  s.free_cores = table_->count_free();
  s.reclaimable_cores = table_->count_borrowed_from(pid_);
  return s;
}

AcquireResult CoordinatorDriver::acquire(const WakeDecision& decision) {
  AcquireResult won;

  if (decision.wake_on_free > 0) {
    std::vector<CoreId> free = table_->free_cores();
    // Fisher-Yates shuffle: the paper's coordinator picks free cores at
    // random, which spreads co-runners across sockets statistically.
    for (std::size_t i = free.size(); i > 1; --i) {
      std::swap(free[i - 1], free[rng_.next_below(i)]);
    }
    unsigned need = decision.wake_on_free;
    for (CoreId c : free) {
      if (need == 0) break;
      if (table_->try_claim(c, pid_)) {
        won.claimed.push_back(c);
        --need;
      }
      // A lost CAS means another coordinator raced us to this core; we
      // simply move on — constraint 3 forbids taking non-free cores.
    }
  }

  if (decision.wake_on_reclaim > 0) {
    unsigned need = decision.wake_on_reclaim;
    for (CoreId c : table_->borrowed_home_cores(pid_)) {
      if (need == 0) break;
      if (table_->try_reclaim(c, pid_)) {
        won.reclaimed.push_back(c);
        --need;
      }
    }
  }
  return won;
}

}  // namespace dws
