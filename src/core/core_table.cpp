#include "core/core_table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <new>
#include <thread>

#include "core/core_ops.hpp"

namespace dws {

namespace {
constexpr std::size_t kHeaderBytes = 64;  // one cache line for the header
// The CAS protocol lives in core_ops.hpp so the model checker can
// instantiate the identical transitions over instrumented atomics.
using Ops = CoreOps<StdAtomicsPolicy>;
}

std::size_t CoreTable::required_bytes(unsigned num_cores) noexcept {
  return kHeaderBytes + kLivenessSlots * sizeof(LivenessRecord) +
         static_cast<std::size_t>(num_cores) * sizeof(Slot);
}

CoreTable::LivenessRecord* CoreTable::liveness() const noexcept {
  return reinterpret_cast<LivenessRecord*>(static_cast<std::byte*>(mem_) +
                                           kHeaderBytes);
}

CoreTable::Slot* CoreTable::slots() const noexcept {
  return reinterpret_cast<Slot*>(static_cast<std::byte*>(mem_) + kHeaderBytes +
                                 kLivenessSlots * sizeof(LivenessRecord));
}

CoreTable::CoreTable(void* mem, unsigned num_cores, unsigned num_programs,
                     bool initialize,
                     std::chrono::milliseconds attach_timeout)
    : mem_(mem) {
  assert(mem != nullptr);
  assert(num_cores > 0);
  assert(num_programs > 0);
  static_assert(sizeof(Header) <= kHeaderBytes);
  static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
                "shared-memory table requires lock-free 32-bit atomics");
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
                "liveness epochs require lock-free 64-bit atomics");
  // Layout revision 2 strides each CAS slot to its own cache line; the
  // slot array offset (kHeaderBytes + liveness block) is line-aligned, so
  // the slots are genuinely line-isolated iff the block itself is.
  static_assert(sizeof(Slot) == layout::kCacheLineBytes);
  static_assert((kHeaderBytes + kLivenessSlots * sizeof(LivenessRecord)) %
                    layout::kCacheLineBytes ==
                0);
  assert(reinterpret_cast<std::uintptr_t>(mem) % alignof(Slot) == 0 &&
         "core table memory must be cache-line aligned (mmap pages are; "
         "CoreTableLocal over-aligns its heap block)");
  if (initialize) {
    Header* h = new (mem_) Header;
    h->layout_version = kLayoutVersion;
    h->num_cores = num_cores;
    h->num_programs = num_programs;
    h->registered.store(0, std::memory_order_relaxed);
    LivenessRecord* lr = liveness();
    for (unsigned i = 0; i < kLivenessSlots; ++i) {
      new (&lr[i].os_pid) std::atomic<std::uint32_t>(0);
      new (&lr[i].epoch) std::atomic<std::uint64_t>(0);
    }
    Slot* s = slots();
    for (unsigned i = 0; i < num_cores; ++i) {
      new (&s[i]) Slot{};  // member initializer frees the core
    }
    // Publish: attachers spin on the magic before trusting the contents.
    h->magic.store(kMagic, std::memory_order_release);
  } else {
    Header* h = header();
    // The creator publishes magic with release ordering; acquire pairs it.
    // The creation window is normally a few stores long, but a creator
    // that dies mid-format leaves the magic unpublished forever — so the
    // wait is bounded: spin briefly, then back off exponentially up to
    // `attach_timeout` before giving up with a typed error.
    if (h->magic.load(std::memory_order_acquire) != kMagic) {
      const auto deadline = std::chrono::steady_clock::now() + attach_timeout;
      auto backoff = std::chrono::microseconds(50);
      for (;;) {
        const std::uint32_t seen = h->magic.load(std::memory_order_acquire);
        if (seen == kMagic) break;
        // A retired magic means a binary with the old packed slot layout
        // formatted this block: its slot offsets disagree with ours, so
        // adopting would index the wrong words. Fail fast with a typed
        // error rather than spinning out the attach timeout.
        for (const std::uint32_t retired : kRetiredMagics) {
          if (seen == retired) {
            mem_ = nullptr;
            throw TableAttachError(
                std::errc::invalid_argument,
                "core table attach: block was formatted by a binary with a "
                "retired slot-array layout revision; remove the stale "
                "segment (CoreTableShm::remove) and restart the co-runners");
          }
        }
        if (std::chrono::steady_clock::now() >= deadline) {
          mem_ = nullptr;  // adopted nothing; leave the block untouched
          throw TableAttachError(
              std::errc::timed_out,
              "core table attach: creator never published the magic word "
              "(did it die mid-initialization?)");
        }
        std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, std::chrono::microseconds(10000));
      }
    }
    if (h->layout_version != kLayoutVersion) {
      mem_ = nullptr;
      throw TableAttachError(
          std::errc::invalid_argument,
          "core table attach: slot-array layout revision does not match "
          "this binary");
    }
    if (h->num_cores != num_cores || h->num_programs != num_programs) {
      mem_ = nullptr;
      throw TableAttachError(
          std::errc::invalid_argument,
          "core table attach: header (num_cores, num_programs) does not "
          "match this program's configuration");
    }
  }
}

CoreTable::CoreTable(CoreTable&& other) noexcept : mem_(other.mem_) {
  other.mem_ = nullptr;
}

CoreTable& CoreTable::operator=(CoreTable&& other) noexcept {
  mem_ = other.mem_;
  other.mem_ = nullptr;
  return *this;
}

unsigned CoreTable::num_cores() const noexcept { return header()->num_cores; }

unsigned CoreTable::num_programs() const noexcept {
  return header()->num_programs;
}

ProgramId CoreTable::register_program() noexcept {
  return header()->registered.fetch_add(1, std::memory_order_relaxed) + 1;
}

void CoreTable::unregister_program(ProgramId pid) noexcept {
  // Retire the liveness record *first*: a sweeper that reads os_pid == 0
  // skips us, so it cannot race the releases below into a double recovery.
  if (pid >= 1 && pid <= kLivenessSlots) {
    liveness()[pid - 1].os_pid.store(0, std::memory_order_release);
  }
  for (CoreId c = 0; c < num_cores(); ++c) release(c, pid);
}

unsigned CoreTable::registered_programs() const noexcept {
  return header()->registered.load(std::memory_order_acquire);
}

bool CoreTable::bind_liveness(ProgramId pid, std::uint32_t os_pid) noexcept {
  if (pid < 1 || pid > kLivenessSlots || os_pid == 0) return false;
  LivenessRecord& r = liveness()[pid - 1];
  r.epoch.store(1, std::memory_order_release);
  r.os_pid.store(os_pid, std::memory_order_release);
  return true;
}

void CoreTable::heartbeat(ProgramId pid) noexcept {
  if (pid < 1 || pid > kLivenessSlots) return;
  liveness()[pid - 1].epoch.fetch_add(1, std::memory_order_release);
}

std::uint64_t CoreTable::liveness_epoch(ProgramId pid) const noexcept {
  if (pid < 1 || pid > kLivenessSlots) return 0;
  return liveness()[pid - 1].epoch.load(std::memory_order_acquire);
}

std::uint32_t CoreTable::liveness_os_pid(ProgramId pid) const noexcept {
  if (pid < 1 || pid > kLivenessSlots) return 0;
  return liveness()[pid - 1].os_pid.load(std::memory_order_acquire);
}

bool CoreTable::retire_liveness(ProgramId pid,
                                std::uint32_t expected_os_pid) noexcept {
  if (pid < 1 || pid > kLivenessSlots || expected_os_pid == 0) return false;
  std::uint32_t expected = expected_os_pid;
  return liveness()[pid - 1].os_pid.compare_exchange_strong(
      expected, 0, std::memory_order_acq_rel, std::memory_order_acquire);
}

std::vector<CoreId> CoreTable::force_release_all(ProgramId pid) noexcept {
  std::vector<CoreId> freed;
  if (pid == kNoProgram) return freed;
  for (CoreId c = 0; c < num_cores(); ++c) {
    // Same CAS as the cooperative release path: pid -> free. If the dead
    // program's worker managed a release before dying, or another program
    // already claimed the slot through free, the CAS fails harmlessly.
    if (release(c, pid)) freed.push_back(c);
  }
  return freed;
}

ProgramId CoreTable::user_of(CoreId core) const noexcept {
  assert(core < num_cores());
  return Ops::user_of(slots(), core);
}

ProgramId CoreTable::home_of(CoreId core) const noexcept {
  assert(core < num_cores());
  return core_home_of(core, num_cores(), num_programs());
}

bool CoreTable::try_claim(CoreId core, ProgramId pid) noexcept {
  assert(core < num_cores());
  assert(pid != kNoProgram);
  return Ops::try_claim(slots(), core, pid);
}

bool CoreTable::try_reclaim(CoreId core, ProgramId pid) noexcept {
  assert(core < num_cores());
  assert(pid != kNoProgram);
  return Ops::try_reclaim(slots(), num_cores(), num_programs(), core, pid);
}

bool CoreTable::release(CoreId core, ProgramId pid) noexcept {
  assert(core < num_cores());
  assert(pid != kNoProgram);
  return Ops::release(slots(), core, pid);
}

std::vector<CoreId> CoreTable::claim_home_cores(ProgramId pid) noexcept {
  std::vector<CoreId> claimed;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (home_of(c) == pid && try_claim(c, pid)) claimed.push_back(c);
  }
  return claimed;
}

unsigned CoreTable::count_free() const noexcept {
  return Ops::count_free(slots(), num_cores());
}

unsigned CoreTable::count_borrowed_from(ProgramId pid) const noexcept {
  return Ops::count_borrowed_from(slots(), num_cores(), num_programs(), pid);
}

unsigned CoreTable::count_active(ProgramId pid) const noexcept {
  return Ops::count_active(slots(), num_cores(), pid);
}

std::vector<CoreId> CoreTable::free_cores() const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (user_of(c) == kNoProgram) out.push_back(c);
  }
  return out;
}

std::vector<CoreId> CoreTable::borrowed_home_cores(ProgramId pid) const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < num_cores(); ++c) {
    const ProgramId u = user_of(c);
    if (home_of(c) == pid && u != kNoProgram && u != pid) out.push_back(c);
  }
  return out;
}

std::vector<CoreId> CoreTable::home_cores(ProgramId pid) const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (home_of(c) == pid) out.push_back(c);
  }
  return out;
}

std::vector<CoreId> CoreTable::cores_used_by(ProgramId pid) const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (user_of(c) == pid) out.push_back(c);
  }
  return out;
}

CoreTableLocal::CoreTableLocal(unsigned num_cores, unsigned num_programs)
    // operator new[] only guarantees max_align_t (16 B), but the strided
    // slot array needs the block cache-line aligned like an mmap page is —
    // over-allocate and round the base up.
    : storage_(new std::byte[CoreTable::required_bytes(num_cores) +
                             layout::kCacheLineBytes - 1]) {
  const std::uintptr_t raw = reinterpret_cast<std::uintptr_t>(storage_.get());
  const std::uintptr_t aligned =
      (raw + layout::kCacheLineBytes - 1) & ~(layout::kCacheLineBytes - 1);
  table_ = std::make_unique<CoreTable>(reinterpret_cast<void*>(aligned),
                                       num_cores, num_programs,
                                       /*initialize=*/true);
}

}  // namespace dws
