#include "core/core_table.hpp"

#include <cassert>
#include <cstring>
#include <new>

#include "core/core_ops.hpp"

namespace dws {

namespace {
constexpr std::size_t kHeaderBytes = 64;  // one cache line for the header
// The CAS protocol lives in core_ops.hpp so the model checker can
// instantiate the identical transitions over instrumented atomics.
using Ops = CoreOps<StdAtomicsPolicy>;
}

std::size_t CoreTable::required_bytes(unsigned num_cores) noexcept {
  return kHeaderBytes + static_cast<std::size_t>(num_cores) * sizeof(Slot);
}

CoreTable::Slot* CoreTable::slots() const noexcept {
  return reinterpret_cast<Slot*>(static_cast<std::byte*>(mem_) + kHeaderBytes);
}

CoreTable::CoreTable(void* mem, unsigned num_cores, unsigned num_programs,
                     bool initialize)
    : mem_(mem) {
  assert(mem != nullptr);
  assert(num_cores > 0);
  assert(num_programs > 0);
  static_assert(sizeof(Header) <= kHeaderBytes);
  static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
                "shared-memory table requires lock-free 32-bit atomics");
  if (initialize) {
    Header* h = new (mem_) Header;
    h->num_cores = num_cores;
    h->num_programs = num_programs;
    h->registered.store(0, std::memory_order_relaxed);
    Slot* s = slots();
    for (unsigned i = 0; i < num_cores; ++i) {
      new (&s[i]) Slot(kNoProgram);
    }
    // Publish: attachers spin on the magic before trusting the contents.
    h->magic.store(kMagic, std::memory_order_release);
  } else {
    Header* h = header();
    // The creator publishes magic with release ordering; acquire pairs it.
    while (h->magic.load(std::memory_order_acquire) != kMagic) {
      // Attach raced with creation; the window is a few stores long.
    }
    assert(h->num_cores == num_cores);
    assert(h->num_programs == num_programs);
  }
}

CoreTable::CoreTable(CoreTable&& other) noexcept : mem_(other.mem_) {
  other.mem_ = nullptr;
}

CoreTable& CoreTable::operator=(CoreTable&& other) noexcept {
  mem_ = other.mem_;
  other.mem_ = nullptr;
  return *this;
}

unsigned CoreTable::num_cores() const noexcept { return header()->num_cores; }

unsigned CoreTable::num_programs() const noexcept {
  return header()->num_programs;
}

ProgramId CoreTable::register_program() noexcept {
  return header()->registered.fetch_add(1, std::memory_order_relaxed) + 1;
}

void CoreTable::unregister_program(ProgramId pid) noexcept {
  for (CoreId c = 0; c < num_cores(); ++c) release(c, pid);
}

ProgramId CoreTable::user_of(CoreId core) const noexcept {
  assert(core < num_cores());
  return Ops::user_of(slots(), core);
}

ProgramId CoreTable::home_of(CoreId core) const noexcept {
  assert(core < num_cores());
  return core_home_of(core, num_cores(), num_programs());
}

bool CoreTable::try_claim(CoreId core, ProgramId pid) noexcept {
  assert(core < num_cores());
  assert(pid != kNoProgram);
  return Ops::try_claim(slots(), core, pid);
}

bool CoreTable::try_reclaim(CoreId core, ProgramId pid) noexcept {
  assert(core < num_cores());
  assert(pid != kNoProgram);
  return Ops::try_reclaim(slots(), num_cores(), num_programs(), core, pid);
}

bool CoreTable::release(CoreId core, ProgramId pid) noexcept {
  assert(core < num_cores());
  assert(pid != kNoProgram);
  return Ops::release(slots(), core, pid);
}

std::vector<CoreId> CoreTable::claim_home_cores(ProgramId pid) noexcept {
  std::vector<CoreId> claimed;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (home_of(c) == pid && try_claim(c, pid)) claimed.push_back(c);
  }
  return claimed;
}

unsigned CoreTable::count_free() const noexcept {
  return Ops::count_free(slots(), num_cores());
}

unsigned CoreTable::count_borrowed_from(ProgramId pid) const noexcept {
  return Ops::count_borrowed_from(slots(), num_cores(), num_programs(), pid);
}

unsigned CoreTable::count_active(ProgramId pid) const noexcept {
  return Ops::count_active(slots(), num_cores(), pid);
}

std::vector<CoreId> CoreTable::free_cores() const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (user_of(c) == kNoProgram) out.push_back(c);
  }
  return out;
}

std::vector<CoreId> CoreTable::borrowed_home_cores(ProgramId pid) const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < num_cores(); ++c) {
    const ProgramId u = user_of(c);
    if (home_of(c) == pid && u != kNoProgram && u != pid) out.push_back(c);
  }
  return out;
}

std::vector<CoreId> CoreTable::home_cores(ProgramId pid) const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (home_of(c) == pid) out.push_back(c);
  }
  return out;
}

std::vector<CoreId> CoreTable::cores_used_by(ProgramId pid) const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (user_of(c) == pid) out.push_back(c);
  }
  return out;
}

CoreTableLocal::CoreTableLocal(unsigned num_cores, unsigned num_programs)
    : storage_(new std::byte[CoreTable::required_bytes(num_cores)]) {
  table_ = std::make_unique<CoreTable>(storage_.get(), num_cores,
                                       num_programs, /*initialize=*/true);
}

}  // namespace dws
