#include "core/core_table.hpp"

#include <cassert>
#include <cstring>
#include <new>

namespace dws {

namespace {
constexpr std::size_t kHeaderBytes = 64;  // one cache line for the header
}

std::size_t CoreTable::required_bytes(unsigned num_cores) noexcept {
  return kHeaderBytes + static_cast<std::size_t>(num_cores) * sizeof(Slot);
}

CoreTable::Slot* CoreTable::slots() const noexcept {
  return reinterpret_cast<Slot*>(static_cast<std::byte*>(mem_) + kHeaderBytes);
}

CoreTable::CoreTable(void* mem, unsigned num_cores, unsigned num_programs,
                     bool initialize)
    : mem_(mem) {
  assert(mem != nullptr);
  assert(num_cores > 0);
  assert(num_programs > 0);
  static_assert(sizeof(Header) <= kHeaderBytes);
  static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
                "shared-memory table requires lock-free 32-bit atomics");
  if (initialize) {
    Header* h = new (mem_) Header;
    h->num_cores = num_cores;
    h->num_programs = num_programs;
    h->registered.store(0, std::memory_order_relaxed);
    Slot* s = slots();
    for (unsigned i = 0; i < num_cores; ++i) {
      new (&s[i]) Slot(kNoProgram);
    }
    // Publish: attachers spin on the magic before trusting the contents.
    h->magic.store(kMagic, std::memory_order_release);
  } else {
    Header* h = header();
    // The creator publishes magic with release ordering; acquire pairs it.
    while (h->magic.load(std::memory_order_acquire) != kMagic) {
      // Attach raced with creation; the window is a few stores long.
    }
    assert(h->num_cores == num_cores);
    assert(h->num_programs == num_programs);
  }
}

CoreTable::CoreTable(CoreTable&& other) noexcept : mem_(other.mem_) {
  other.mem_ = nullptr;
}

CoreTable& CoreTable::operator=(CoreTable&& other) noexcept {
  mem_ = other.mem_;
  other.mem_ = nullptr;
  return *this;
}

unsigned CoreTable::num_cores() const noexcept { return header()->num_cores; }

unsigned CoreTable::num_programs() const noexcept {
  return header()->num_programs;
}

ProgramId CoreTable::register_program() noexcept {
  return header()->registered.fetch_add(1, std::memory_order_relaxed) + 1;
}

void CoreTable::unregister_program(ProgramId pid) noexcept {
  for (CoreId c = 0; c < num_cores(); ++c) release(c, pid);
}

ProgramId CoreTable::user_of(CoreId core) const noexcept {
  assert(core < num_cores());
  return slots()[core].load(std::memory_order_acquire);
}

ProgramId CoreTable::home_of(CoreId core) const noexcept {
  assert(core < num_cores());
  const auto k = static_cast<std::uint64_t>(num_cores());
  const auto m = static_cast<std::uint64_t>(num_programs());
  return static_cast<ProgramId>(core * m / k) + 1;
}

bool CoreTable::try_claim(CoreId core, ProgramId pid) noexcept {
  assert(core < num_cores());
  assert(pid != kNoProgram);
  std::uint32_t expected = kNoProgram;
  return slots()[core].compare_exchange_strong(
      expected, pid, std::memory_order_acq_rel, std::memory_order_acquire);
}

bool CoreTable::try_reclaim(CoreId core, ProgramId pid) noexcept {
  assert(core < num_cores());
  assert(pid != kNoProgram);
  if (home_of(core) != pid) return false;
  std::uint32_t current = slots()[core].load(std::memory_order_acquire);
  if (current == kNoProgram || current == pid) return false;
  return slots()[core].compare_exchange_strong(
      current, pid, std::memory_order_acq_rel, std::memory_order_acquire);
}

bool CoreTable::release(CoreId core, ProgramId pid) noexcept {
  assert(core < num_cores());
  assert(pid != kNoProgram);
  std::uint32_t expected = pid;
  return slots()[core].compare_exchange_strong(
      expected, kNoProgram, std::memory_order_acq_rel,
      std::memory_order_acquire);
}

std::vector<CoreId> CoreTable::claim_home_cores(ProgramId pid) noexcept {
  std::vector<CoreId> claimed;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (home_of(c) == pid && try_claim(c, pid)) claimed.push_back(c);
  }
  return claimed;
}

unsigned CoreTable::count_free() const noexcept {
  unsigned n = 0;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (user_of(c) == kNoProgram) ++n;
  }
  return n;
}

unsigned CoreTable::count_borrowed_from(ProgramId pid) const noexcept {
  unsigned n = 0;
  for (CoreId c = 0; c < num_cores(); ++c) {
    const ProgramId u = user_of(c);
    if (home_of(c) == pid && u != kNoProgram && u != pid) ++n;
  }
  return n;
}

unsigned CoreTable::count_active(ProgramId pid) const noexcept {
  unsigned n = 0;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (user_of(c) == pid) ++n;
  }
  return n;
}

std::vector<CoreId> CoreTable::free_cores() const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (user_of(c) == kNoProgram) out.push_back(c);
  }
  return out;
}

std::vector<CoreId> CoreTable::borrowed_home_cores(ProgramId pid) const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < num_cores(); ++c) {
    const ProgramId u = user_of(c);
    if (home_of(c) == pid && u != kNoProgram && u != pid) out.push_back(c);
  }
  return out;
}

std::vector<CoreId> CoreTable::home_cores(ProgramId pid) const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (home_of(c) == pid) out.push_back(c);
  }
  return out;
}

std::vector<CoreId> CoreTable::cores_used_by(ProgramId pid) const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (user_of(c) == pid) out.push_back(c);
  }
  return out;
}

CoreTableLocal::CoreTableLocal(unsigned num_cores, unsigned num_programs)
    : storage_(new std::byte[CoreTable::required_bytes(num_cores)]) {
  table_ = std::make_unique<CoreTable>(storage_.get(), num_cores,
                                       num_programs, /*initialize=*/true);
}

}  // namespace dws
