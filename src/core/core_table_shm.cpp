#include "core/core_table_shm.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <system_error>
#include <thread>

namespace dws {

namespace {
[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}
}  // namespace

CoreTableShm::CoreTableShm(const std::string& name, unsigned num_cores,
                           unsigned num_programs)
    : CoreTableShm(name, num_cores, num_programs, Options()) {}

CoreTableShm::CoreTableShm(const std::string& name, unsigned num_cores,
                           unsigned num_programs, Options options)
    : name_(name), bytes_(CoreTable::required_bytes(num_cores)) {
  // Try to create exclusively first: the winner formats the segment.
  int fd = ::shm_open(name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd >= 0) {
    creator_ = true;
  } else if (errno == EEXIST) {
    fd = ::shm_open(name_.c_str(), O_RDWR, 0600);
    if (fd < 0) throw_errno("shm_open(attach)");
  } else {
    throw_errno("shm_open(create)");
  }

  if (creator_ && ::ftruncate(fd, static_cast<off_t>(bytes_)) != 0) {
    const int saved = errno;
    ::close(fd);
    ::shm_unlink(name_.c_str());
    errno = saved;
    throw_errno("ftruncate");
  }
  if (!creator_) {
    // The creator may still be between shm_open and ftruncate; wait until
    // the segment has its final size before mapping. A creator that died
    // inside that window leaves a permanently zero-sized segment, so the
    // wait is bounded: retry with exponential backoff up to the attach
    // timeout, then fail with a typed error (the caller can clear the
    // residue with remove() and retry as the new creator).
    const auto deadline =
        std::chrono::steady_clock::now() + options.attach_timeout;
    auto backoff = std::chrono::microseconds(50);
    for (;;) {
      struct stat st{};
      if (::fstat(fd, &st) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("fstat");
      }
      if (static_cast<std::size_t>(st.st_size) >= bytes_) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        ::close(fd);
        throw TableAttachError(
            std::errc::timed_out,
            "shm core table attach: segment never reached its formatted "
            "size (creator died between shm_open and ftruncate?)");
      }
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, std::chrono::microseconds(10000));
    }
  }

  mapping_ = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  const int saved = errno;
  ::close(fd);
  if (mapping_ == MAP_FAILED) {
    mapping_ = nullptr;
    if (creator_) ::shm_unlink(name_.c_str());
    errno = saved;
    throw_errno("mmap");
  }

  // CoreTable's constructor handles the format/adopt handshake; attachers
  // wait (bounded) on the magic word until the creator publishes it. If
  // that times out — creator died after ftruncate but before formatting —
  // unwind the mapping so nothing leaks with the exception.
  try {
    table_ = std::make_unique<CoreTable>(mapping_, num_cores, num_programs,
                                         /*initialize=*/creator_,
                                         options.attach_timeout);
  } catch (...) {
    ::munmap(mapping_, bytes_);
    mapping_ = nullptr;
    if (creator_) ::shm_unlink(name_.c_str());
    throw;
  }
}

CoreTableShm::~CoreTableShm() {
  table_.reset();
  if (mapping_ != nullptr) ::munmap(mapping_, bytes_);
  // Deliberately no shm_unlink here: other co-running programs may still
  // be attached. Lifetime of the name is managed by the launcher via
  // remove().
}

void CoreTableShm::remove(const std::string& name) noexcept {
  ::shm_unlink(name.c_str());
}

}  // namespace dws
