// Atomics policy: the single template knob through which the lock-free
// structures (ChaseLevDeque, CoreOps) name their atomic primitives.
//
// Production code instantiates with StdAtomicsPolicy (the default
// everywhere) and compiles to plain std::atomic / std::atomic_thread_fence
// with zero overhead. The model-checking harness in src/check substitutes
// dws::check::CheckAtomicsPolicy, whose atomics route every operation
// through a controlled scheduler that explores thread interleavings and
// weak-memory read choices (see docs/CHECKING.md).
#pragma once

#include <atomic>

namespace dws {

struct StdAtomicsPolicy {
  template <typename T>
  using atomic = std::atomic<T>;

  static void fence(std::memory_order mo) noexcept {
    std::atomic_thread_fence(mo);
  }
};

}  // namespace dws
