// Socket/NUMA machine model: which cores are close to which.
//
// The paper's coordinator and thieves treat all cores as interchangeable,
// which is only true inside one socket. This type gives every layer that
// picks a core — victim selection (runtime + simulator), the coordinator's
// core-exchange, the simulator's migration costs — a shared notion of
// distance, expressed as the four tiers of distbdd-spin17's wstealer
// (VERYNEAR/NEAR/FAR/VERYFAR): SMT sibling, same socket, adjacent socket,
// distant socket. "On the Efficiency of Localized Work Stealing" supplies
// the theory that near-first stealing over such tiers preserves the
// work-stealing time bounds while cutting remote traffic.
//
// Construction is either synthetic (deterministic: sockets split the cores
// contiguously, matching SimParams::socket_of) or auto-detected from
// sysfs, with the synthetic single-socket layout as the fallback so a
// build without /sys (containers, non-Linux) behaves identically
// everywhere. The type is immutable after construction and cheap to copy.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/types.hpp"

namespace dws {

/// Victim/core distance tiers, nearest first. The numeric values order
/// tiers (kVeryNear < kNear < ...) and index the per-tier counters.
enum class DistanceTier : int {
  kVeryNear = 0,  ///< same physical core (SMT sibling) — shares L1/L2
  kNear = 1,      ///< same socket — shares the LLC
  kFar = 2,       ///< adjacent socket — one interconnect hop
  kVeryFar = 3,   ///< distant socket — multi-hop interconnect
};

inline constexpr unsigned kNumDistanceTiers = 4;

[[nodiscard]] constexpr const char* to_string(DistanceTier t) noexcept {
  switch (t) {
    case DistanceTier::kVeryNear: return "VERYNEAR";
    case DistanceTier::kNear: return "NEAR";
    case DistanceTier::kFar: return "FAR";
    case DistanceTier::kVeryFar: return "VERYFAR";
  }
  return "?";
}

class Topology {
 public:
  /// Degenerate 1-core, 1-socket machine (safe default).
  Topology() : Topology(synthetic(1, 1)) {}

  /// Deterministic synthetic machine: `num_sockets` sockets splitting the
  /// cores contiguously (the same ceil-division split as
  /// SimParams::socket_of), sockets arranged in a linear chain (socket i
  /// and i+1 are adjacent), and optionally `smt_per_core` consecutive
  /// cores forming one physical core (SMT siblings). num_sockets and
  /// smt_per_core are clamped to [1, num_cores].
  [[nodiscard]] static Topology synthetic(unsigned num_cores,
                                          unsigned num_sockets,
                                          unsigned smt_per_core = 1);

  /// Single-socket, no-SMT machine: every distinct pair is kNear.
  [[nodiscard]] static Topology uniform(unsigned num_cores) {
    return synthetic(num_cores, 1);
  }

  /// Auto-detect the first `num_cores` logical CPUs from sysfs
  /// (physical_package_id + core_id per cpu, NUMA node distances for the
  /// remote tiers). Falls back to uniform(num_cores) when sysfs is absent
  /// or inconsistent, so the result is always valid and deterministic for
  /// a given machine.
  [[nodiscard]] static Topology detect(unsigned num_cores);

  [[nodiscard]] unsigned num_cores() const noexcept {
    return static_cast<unsigned>(socket_of_.size());
  }
  [[nodiscard]] unsigned num_sockets() const noexcept { return num_sockets_; }
  [[nodiscard]] unsigned socket_of(CoreId c) const noexcept {
    return socket_of_[c];
  }
  /// Physical-core (SMT-sibling group) id of a logical core.
  [[nodiscard]] unsigned group_of(CoreId c) const noexcept {
    return group_of_[c];
  }

  /// Distance tier between two cores. Symmetric; distance(c, c) is
  /// kVeryNear (a core is nearest to itself; callers never self-steal).
  [[nodiscard]] DistanceTier distance(CoreId a, CoreId b) const noexcept {
    if (group_of_[a] == group_of_[b]) return DistanceTier::kVeryNear;
    return static_cast<DistanceTier>(
        socket_tier_[socket_of_[a] * num_sockets_ + socket_of_[b]]);
  }

  /// True when every distinct pair of cores is equidistant (one socket,
  /// no SMT) — tiered and uniform victim selection then coincide.
  [[nodiscard]] bool flat() const noexcept { return flat_; }

 private:
  Topology(unsigned num_sockets, std::vector<std::uint8_t> socket_of,
           std::vector<std::uint32_t> group_of,
           std::vector<std::uint8_t> socket_tier);

  unsigned num_sockets_ = 1;
  bool flat_ = true;
  std::vector<std::uint8_t> socket_of_;   // [core] -> socket
  std::vector<std::uint32_t> group_of_;   // [core] -> physical-core group
  std::vector<std::uint8_t> socket_tier_; // [sa * S + sb] -> DistanceTier
};

/// Resolve the topology a Config asks for: num_sockets == 0 means sysfs
/// auto-detection; otherwise the deterministic synthetic machine.
[[nodiscard]] Topology make_topology(const Config& cfg, unsigned num_cores);

}  // namespace dws
