// The core-allocation-table CAS protocol (§3.1/§3.3), factored out of
// CoreTable as a header-only template so the exact production transitions
// can be instantiated over the model checker's instrumented atomics
// (CoreOps<check::CheckAtomicsPolicy>) as well as over std::atomic
// (CoreOps<StdAtomicsPolicy>, what core_table.cpp compiles). The raw-memory
// CoreTable in core_table.{hpp,cpp} is a thin layout wrapper around these
// functions; keeping the protocol here means the model-check suite and the
// shared-memory table cannot drift apart.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/atomics_policy.hpp"
#include "core/types.hpp"

namespace dws {

/// Static home owner of `core` under the initial equipartition: with k
/// cores and m declared programs, program i (1-based) homes the contiguous
/// block {c : c*m/k == i-1}. Shared by every table implementation and the
/// reference models in the tests.
[[nodiscard]] constexpr ProgramId core_home_of(CoreId core, unsigned num_cores,
                                               unsigned num_programs) noexcept {
  return static_cast<ProgramId>(static_cast<std::uint64_t>(core) *
                                num_programs / num_cores) +
         1;
}

template <typename Policy = StdAtomicsPolicy>
struct CoreOps {
  using Slot = typename Policy::template atomic<std::uint32_t>;

  /// Current active program on `core`, or kNoProgram if free.
  [[nodiscard]] static ProgramId user_of(const Slot* slots, CoreId core) {
    return slots[core].load(std::memory_order_acquire);
  }

  /// CAS free -> pid. True iff this call performed the transition.
  static bool try_claim(Slot* slots, CoreId core, ProgramId pid) {
    std::uint32_t expected = kNoProgram;
    return slots[core].compare_exchange_strong(
        expected, pid, std::memory_order_acq_rel, std::memory_order_acquire);
  }

  /// Take a *home* core of `pid` back from whichever program borrowed it
  /// (§3.3 cases 2–3). Fails if the core is free, already ours, or not a
  /// home core of `pid`.
  static bool try_reclaim(Slot* slots, unsigned num_cores,
                          unsigned num_programs, CoreId core, ProgramId pid) {
    if (core_home_of(core, num_cores, num_programs) != pid) return false;
    std::uint32_t current = slots[core].load(std::memory_order_acquire);
    if (current == kNoProgram || current == pid) return false;
    return slots[core].compare_exchange_strong(
        current, pid, std::memory_order_acq_rel, std::memory_order_acquire);
  }

  /// CAS pid -> free. True iff `pid` was the user.
  static bool release(Slot* slots, CoreId core, ProgramId pid) {
    std::uint32_t expected = pid;
    return slots[core].compare_exchange_strong(
        expected, kNoProgram, std::memory_order_acq_rel,
        std::memory_order_acquire);
  }

  /// N_f: cores currently free.
  [[nodiscard]] static unsigned count_free(const Slot* slots,
                                           unsigned num_cores) {
    unsigned n = 0;
    for (CoreId c = 0; c < num_cores; ++c) {
      if (user_of(slots, c) == kNoProgram) ++n;
    }
    return n;
  }

  /// N_r: home cores of `pid` currently used by *other* programs.
  [[nodiscard]] static unsigned count_borrowed_from(const Slot* slots,
                                                    unsigned num_cores,
                                                    unsigned num_programs,
                                                    ProgramId pid) {
    unsigned n = 0;
    for (CoreId c = 0; c < num_cores; ++c) {
      const ProgramId u = user_of(slots, c);
      if (core_home_of(c, num_cores, num_programs) == pid &&
          u != kNoProgram && u != pid) {
        ++n;
      }
    }
    return n;
  }

  /// Cores on which `pid` is the active user.
  [[nodiscard]] static unsigned count_active(const Slot* slots,
                                             unsigned num_cores,
                                             ProgramId pid) {
    unsigned n = 0;
    for (CoreId c = 0; c < num_cores; ++c) {
      if (user_of(slots, c) == pid) ++n;
    }
    return n;
  }
};

}  // namespace dws
