// The core-allocation-table CAS protocol (§3.1/§3.3), factored out of
// CoreTable as a header-only template so the exact production transitions
// can be instantiated over the model checker's instrumented atomics
// (CoreOps<check::CheckAtomicsPolicy>) as well as over std::atomic
// (CoreOps<StdAtomicsPolicy>, what core_table.cpp compiles). The raw-memory
// CoreTable in core_table.{hpp,cpp} is a thin layout wrapper around these
// functions; keeping the protocol here means the model-check suite and the
// shared-memory table cannot drift apart.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/atomics_policy.hpp"
#include "core/types.hpp"
#include "util/layout.hpp"

namespace dws {

/// Historical packed slot layout: one bare CAS word, so 16 slots share a
/// 64-byte cache line and every co-runner's claim/release invalidates its
/// 15 neighbours' lines (the dws-atomic-array anti-pattern). Kept for the
/// bench_false_sharing A/B guardrail and the model-check proof that the
/// protocol is layout-independent; production tables use StridedCoreSlot.
template <typename Policy>
struct PackedCoreSlot {
  // dws-layout: packed-ok A/B baseline layout, instantiated only by bench
  // and model-check code that measures or proves against it.
  DWS_SHARED typename Policy::template atomic<std::uint32_t> user{kNoProgram};
};

/// Production slot layout: the CAS word alone on its cache line, so a
/// claim/release on core c invalidates nobody else's slot. Costs
/// 64 B/core of shared memory (16 KiB at 256 cores) — noise next to the
/// coherence traffic the packed layout generates under multi-programmed
/// churn (see BENCH_false_sharing.json).
template <typename Policy>
struct alignas(layout::kCacheLineBytes) StridedCoreSlot {
  DWS_SHARED typename Policy::template atomic<std::uint32_t> user{kNoProgram};
};

/// Static home owner of `core` under the initial equipartition: with k
/// cores and m declared programs, program i (1-based) homes the contiguous
/// block {c : c*m/k == i-1}. Shared by every table implementation and the
/// reference models in the tests.
[[nodiscard]] constexpr ProgramId core_home_of(CoreId core, unsigned num_cores,
                                               unsigned num_programs) noexcept {
  return static_cast<ProgramId>(static_cast<std::uint64_t>(core) *
                                num_programs / num_cores) +
         1;
}

/// The CAS protocol, parameterized over both the atomics policy (std vs
/// model-checker instrumented) and the slot layout (strided vs packed).
/// Every transition goes through slots[core].user, so the protocol is
/// layout-independent by construction — test_check_core_table instantiates
/// it over both layouts to prove exactly that.
template <typename Policy = StdAtomicsPolicy,
          template <typename> class SlotT = StridedCoreSlot>
struct CoreOps {
  using Slot = SlotT<Policy>;

  /// Current active program on `core`, or kNoProgram if free.
  [[nodiscard]] static ProgramId user_of(const Slot* slots, CoreId core) {
    return slots[core].user.load(std::memory_order_acquire);
  }

  /// CAS free -> pid. True iff this call performed the transition.
  static bool try_claim(Slot* slots, CoreId core, ProgramId pid) {
    std::uint32_t expected = kNoProgram;
    return slots[core].user.compare_exchange_strong(
        expected, pid, std::memory_order_acq_rel, std::memory_order_acquire);
  }

  /// Take a *home* core of `pid` back from whichever program borrowed it
  /// (§3.3 cases 2–3). Fails if the core is free, already ours, or not a
  /// home core of `pid`.
  static bool try_reclaim(Slot* slots, unsigned num_cores,
                          unsigned num_programs, CoreId core, ProgramId pid) {
    if (core_home_of(core, num_cores, num_programs) != pid) return false;
    std::uint32_t current = slots[core].user.load(std::memory_order_acquire);
    if (current == kNoProgram || current == pid) return false;
    return slots[core].user.compare_exchange_strong(
        current, pid, std::memory_order_acq_rel, std::memory_order_acquire);
  }

  /// CAS pid -> free. True iff `pid` was the user.
  static bool release(Slot* slots, CoreId core, ProgramId pid) {
    std::uint32_t expected = pid;
    return slots[core].user.compare_exchange_strong(
        expected, kNoProgram, std::memory_order_acq_rel,
        std::memory_order_acquire);
  }

  /// N_f: cores currently free.
  [[nodiscard]] static unsigned count_free(const Slot* slots,
                                           unsigned num_cores) {
    unsigned n = 0;
    for (CoreId c = 0; c < num_cores; ++c) {
      if (user_of(slots, c) == kNoProgram) ++n;
    }
    return n;
  }

  /// N_r: home cores of `pid` currently used by *other* programs.
  [[nodiscard]] static unsigned count_borrowed_from(const Slot* slots,
                                                    unsigned num_cores,
                                                    unsigned num_programs,
                                                    ProgramId pid) {
    unsigned n = 0;
    for (CoreId c = 0; c < num_cores; ++c) {
      const ProgramId u = user_of(slots, c);
      if (core_home_of(c, num_cores, num_programs) == pid &&
          u != kNoProgram && u != pid) {
        ++n;
      }
    }
    return n;
  }

  /// Cores on which `pid` is the active user.
  [[nodiscard]] static unsigned count_active(const Slot* slots,
                                             unsigned num_cores,
                                             ProgramId pid) {
    unsigned n = 0;
    for (CoreId c = 0; c < num_cores; ++c) {
      if (user_of(slots, c) == pid) ++n;
    }
    return n;
  }
};

}  // namespace dws
