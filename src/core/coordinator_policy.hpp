// The coordinator's wake-up model (§3.3): from a demand snapshot
// (N_b queued tasks, N_a active workers, N_f free cores, N_r home cores
// lent to other programs) compute how many sleeping workers to wake and
// where the cores come from, honouring the paper's three constraints:
//   1. more queued tasks => more woken workers  (Eq. 1: N_w = N_b / N_a);
//   2. a program may take its own cores back when free cores run out;
//   3. a program never takes a core another program has not released.
//
// Like StealPolicy this is pure, platform-independent logic shared by the
// thread runtime and the simulator. The table-touching part (which
// concrete cores to claim/reclaim) lives in CoordinatorDriver.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/core_table.hpp"
#include "core/topology.hpp"
#include "core/types.hpp"

namespace dws {

/// Inputs to one coordinator decision (§3.3 parameters).
struct DemandSnapshot {
  std::uint64_t queued_tasks = 0;  ///< N_b across all task pools
  unsigned active_workers = 0;     ///< N_a
  unsigned free_cores = 0;         ///< N_f (system-wide)
  unsigned reclaimable_cores = 0;  ///< N_r (my home cores used by others)
  unsigned sleeping_workers = 0;   ///< how many of my workers can be woken
};

/// Output of one coordinator decision.
struct WakeDecision {
  unsigned wake_on_free = 0;     ///< workers to wake on freshly claimed cores
  unsigned wake_on_reclaim = 0;  ///< workers to wake on reclaimed home cores

  [[nodiscard]] unsigned total() const noexcept {
    return wake_on_free + wake_on_reclaim;
  }
  friend bool operator==(const WakeDecision&, const WakeDecision&) = default;
};

class CoordinatorPolicy {
 public:
  /// `wake_threshold`: minimum average backlog per active worker before
  /// any wake-up happens (Config::wake_threshold; the paper's "a few
  /// tasks on average" guard, 1.0 reproduces Eq. 1 exactly).
  explicit constexpr CoordinatorPolicy(double wake_threshold = 1.0) noexcept
      : wake_threshold_(wake_threshold) {}

  /// Apply Eq. 1 and the three §3.3 cases. The result is additionally
  /// capped at the number of sleeping workers (we cannot wake workers that
  /// do not exist) and never wakes anyone when the backlog is empty.
  [[nodiscard]] WakeDecision decide(const DemandSnapshot& s) const noexcept;

 private:
  double wake_threshold_;
};

/// Cores actually obtained by one CoordinatorDriver::acquire call.
struct AcquireResult {
  std::vector<CoreId> claimed;    ///< previously free cores now ours
  std::vector<CoreId> reclaimed;  ///< home cores taken back from borrowers

  [[nodiscard]] std::size_t total() const noexcept {
    return claimed.size() + reclaimed.size();
  }
};

/// Applies a WakeDecision against a concrete core allocation table:
/// claims `wake_on_free` free cores and reclaims up to `wake_on_reclaim`
/// home cores. Because other coordinators race on the same table, fewer
/// cores than requested may be obtained; the result is what was won.
///
/// Candidate ordering is explicit and deterministic: cores nearest the
/// program's home socket first (topology tier from `home_core`), core id
/// ascending within a tier. The paper's coordinator "randomly selects N_w
/// free cores"; the Fisher-Yates shuffle that used to implement that made
/// equally-eligible grants iteration-order-dependent — on a NUMA machine
/// it happily granted remote cores while same-socket ones sat free, and
/// any reordering of the free list silently changed who got what. Without
/// a topology (or on a flat one) the order degenerates to core id alone,
/// which keeps co-runners packing from opposite ends of their own home
/// ranges rather than interleaving at random.
class CoordinatorDriver {
 public:
  /// `seed` is retained for constructor-signature stability (selection
  /// used to be randomized); it is no longer consumed.
  CoordinatorDriver(CoreTable& table, ProgramId pid, std::uint64_t seed);

  /// Topology-aware ordering: candidates are ranked by distance tier from
  /// `home_core` (the program's home-partition anchor), then core id.
  /// `topo`, when non-null, must outlive the driver.
  CoordinatorDriver(CoreTable& table, ProgramId pid, std::uint64_t seed,
                    const Topology* topo, CoreId home_core);

  /// Build the table-derived half of a demand snapshot (N_f, N_r).
  [[nodiscard]] DemandSnapshot snapshot_cores() const noexcept;

  /// Execute `decision`; on each returned core the caller should wake its
  /// sleeping worker.
  AcquireResult acquire(const WakeDecision& decision);

 private:
  /// Sort candidates by (tier from home_core_, core id) — the explicit
  /// tie-break; by id alone when no topology was given.
  void order_candidates(std::vector<CoreId>& cores) const;

  CoreTable* table_;
  ProgramId pid_;
  const Topology* topo_ = nullptr;
  CoreId home_core_ = 0;
};

// ---- Crash tolerance: stale-owner sweeping ----

/// What one StaleSweeper::sweep call recovered.
struct StaleSweepResult {
  std::vector<ProgramId> declared_dead;  ///< programs this call retired
  std::vector<CoreId> freed;             ///< their cores returned to free

  [[nodiscard]] bool empty() const noexcept {
    return declared_dead.empty() && freed.empty();
  }
};

/// Detects co-runners that died without releasing their cores and returns
/// those cores to the free pool, where every survivor's demand-aware wake
/// path absorbs them (the §3.3 machinery playing out under failure).
///
/// Protocol: each program's coordinator bumps its liveness epoch in the
/// shared table every period T (CoreTable::heartbeat). A sweeper calls
/// sweep() once per period; a co-runner whose epoch has not advanced for
/// `stale_periods` consecutive calls (i.e. ~K·T of wall time) is probed
/// with kill(pid, 0). Only if the OS confirms the process is gone does the
/// sweeper race retire_liveness — the winner of that CAS (exactly one
/// among concurrent survivors) force-releases the ghost's slots.
///
/// Safety invariants:
///  * A slow-but-alive program is never swept: the kill(pid, 0) probe is
///    the authoritative confirm; the epoch stall is only a cheap filter.
///  * Programs without liveness evidence (os_pid == 0: never bound,
///    cleanly unregistered, or id beyond CoreTable::kLivenessSlots) are
///    never swept.
///  * One-active-worker-per-core holds through a forced release: the
///    recovery CAS is the same pid -> free transition as a cooperative
///    release, so it loses cleanly against any concurrent claim/reclaim.
class StaleSweeper {
 public:
  /// Probe deciding whether an OS process still exists (default:
  /// kill(pid, 0), counting EPERM as alive). Injectable for tests.
  using AliveProbe = std::function<bool(std::uint32_t os_pid)>;

  StaleSweeper(CoreTable& table, ProgramId self, unsigned stale_periods);
  StaleSweeper(CoreTable& table, ProgramId self, unsigned stale_periods,
               AliveProbe probe);

  /// Run one sweep pass. Call at most once per coordinator period; each
  /// call advances the stall clock by one period.
  StaleSweepResult sweep();

 private:
  struct Observation {
    std::uint64_t epoch = 0;
    /// Which process the stall clock below is measuring. Epochs restart at
    /// 1 per bind, so a slot rebound to a new process can present the same
    /// epoch its dead predecessor last showed; keying the stall clock on
    /// (os_pid, epoch) instead of epoch alone keeps the newcomer from
    /// inheriting the corpse's stalled count and being swept early.
    std::uint32_t os_pid = 0;
    unsigned stalled = 0;
  };

  CoreTable* table_;
  ProgramId self_;
  unsigned stale_periods_;
  AliveProbe alive_;
  std::vector<Observation> seen_;  // indexed by ProgramId
};

}  // namespace dws
