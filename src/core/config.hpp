// Runtime/simulator configuration knobs, mirroring the parameters the
// paper exposes: T_SLEEP (§3.2), the coordinator period T (§3.4), the
// machine width k and co-runner count m (§2).
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace dws {

struct Config {
  /// Scheduling policy.
  SchedMode mode = SchedMode::kDws;

  /// Machine width k: one worker per core per program (§3.1).
  /// 0 means "use std::thread::hardware_concurrency()".
  unsigned num_cores = 0;

  /// Declared number of co-running programs m, used for the initial
  /// equipartition of the core allocation table. A single program => 1.
  unsigned num_programs = 1;

  /// T_SLEEP: a worker sleeps after this many consecutive failed steals.
  /// -1 selects the paper's recommendation T_SLEEP = k (§3.4, §4.3).
  int t_sleep = -1;

  /// Coordinator wake-up period T in milliseconds (§3.4 suggests 10 ms).
  double coordinator_period_ms = 10.0;

  /// A sleeping-worker wake is considered only when the average backlog
  /// per active worker (N_b / N_a) reaches this many tasks (§3.3: "if each
  /// worker only needs to process a few tasks on average, the coordinator
  /// will not wake up sleeping workers"). The paper's Eq. 1 corresponds
  /// to a threshold of 1.
  double wake_threshold = 1.0;

  /// Socket count of the machine model (core/topology.hpp): cores are
  /// split contiguously across sockets. 1 models a flat machine; 0 asks
  /// for sysfs auto-detection (with the flat layout as deterministic
  /// fallback where /sys is absent).
  unsigned num_sockets = 1;

  /// SMT width of the synthetic machine model: this many consecutive
  /// cores form one physical core (VERYNEAR victims). Ignored under
  /// auto-detection, which reads the real sibling map.
  unsigned smt_per_core = 1;

  /// Victim ordering for steal attempts: TIERED exhausts near distance
  /// tiers before far ones (locality-aware); UNIFORM is the paper's
  /// original random victim. On a flat topology the two coincide
  /// statistically, so TIERED is the default.
  VictimPolicy victim_policy = VictimPolicy::kTiered;

  /// Pin worker i to hardware core i (real runtime only).
  bool pin_threads = true;

  /// Seed for victim-selection and core-selection randomness.
  std::uint64_t seed = 0x5eed5eed5eedULL;

  /// Pooled task storage: spawns from a worker thread placement-construct
  /// their task into the worker's recycled slab pool (runtime/task_pool.hpp)
  /// instead of heap-allocating, when the closure fits a slot. Off means
  /// every spawn pays new/delete — kept as a switch so the spawn benchmark
  /// can measure the pooled-vs-heap delta (BENCH_spawn_steal.json) and as
  /// an escape hatch while the pool protocol is young.
  bool pool_tasks = true;

  /// §4.4 extension: run this program under *work-sharing* — every spawn
  /// goes to the scheduler's central queue instead of the spawning
  /// worker's deque. The sleep/wake policy and coordinator operate
  /// unchanged (the paper's claim that DWS transfers to other dynamic
  /// load-balancing models).
  bool work_sharing = false;

  /// Crash tolerance: a co-runner whose liveness epoch has not advanced
  /// for this many consecutive coordinator periods (~K·T of wall time) is
  /// probed with kill(pid, 0) and, if the OS confirms the process is
  /// gone, its cores are force-released back to the free pool. 0 disables
  /// the stale sweep (heartbeats are still published so *other* programs
  /// can track us).
  unsigned stale_after_periods = 5;

  /// §6 extension: adapt T_SLEEP online. A worker woken sooner than
  /// adaptive_short_sleep_ms after going to sleep doubles the program's
  /// threshold (capped at 64x base); the coordinator decays it back each
  /// period. Off by default (the paper fixes T_SLEEP = k).
  bool adaptive_t_sleep = false;
  /// "Premature sleep" horizon; <= 0 selects coordinator_period_ms.
  double adaptive_short_sleep_ms = -1.0;

  /// Resolved T_SLEEP for a k-core machine.
  [[nodiscard]] constexpr int effective_t_sleep(unsigned k) const noexcept {
    return t_sleep >= 0 ? t_sleep : static_cast<int>(k);
  }
};

}  // namespace dws
