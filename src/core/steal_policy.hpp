// Per-worker steal bookkeeping implementing the mode-dependent part of
// Algorithm 1 (§3.2): count consecutive failed steals and decide, after
// each failure, whether the worker should spin, yield its core, or go to
// sleep and release the core.
//
// This class is pure policy — no threads, no atomics — so the identical
// code drives both the real runtime's workers and the simulator's virtual
// workers, which is what makes the simulated evaluation exercise the
// paper's actual contribution.
#pragma once

#include "core/types.hpp"

namespace dws {

/// What a worker should do after a failed steal attempt.
enum class StealOutcome : int {
  /// Try again immediately (CLASSIC busy-spinning).
  kRetry = 0,
  /// Yield the core to co-located threads, then try again (ABP, and the
  /// pre-threshold behaviour of every sleeping mode).
  kYield = 1,
  /// Release the core and sleep until the coordinator wakes us
  /// (DWS / DWS-NC once failed_steals reaches T_SLEEP).
  kSleep = 2,
};

class StealPolicy {
 public:
  /// The failure counter saturates here instead of growing without bound:
  /// kClassic returns kRetry forever and never resets, so a long-starved
  /// busy-spinning worker would otherwise increment a plain int past
  /// INT_MAX — signed overflow, UB. The cap is far above any meaningful
  /// threshold (T_SLEEP tops out at 64x the core count); thresholds are
  /// clamped to it so `failed_steals_ >= t_sleep_` keeps firing after
  /// saturation.
  static constexpr int kFailedStealsSaturation = 1 << 20;

  /// `t_sleep` is the resolved threshold (Config::effective_t_sleep).
  constexpr StealPolicy(SchedMode mode, int t_sleep) noexcept
      : mode_(mode), t_sleep_(clamp_t_sleep(t_sleep)) {}

  /// Algorithm 1 lines 5-6 / 10-11: any successful task acquisition
  /// (own pool pop or steal) resets the failure count.
  constexpr void on_task_acquired() noexcept { failed_steals_ = 0; }

  /// Algorithm 1 lines 13-17: record one failed steal and return the
  /// action the worker must take.
  constexpr StealOutcome on_steal_failed() noexcept {
    if (failed_steals_ < kFailedStealsSaturation) ++failed_steals_;
    switch (mode_) {
      case SchedMode::kClassic:
        return StealOutcome::kRetry;
      case SchedMode::kAbp:
      case SchedMode::kEp:
      case SchedMode::kBws:
        return StealOutcome::kYield;
      case SchedMode::kDws:
      case SchedMode::kDwsNc:
        // Algorithm 1 line 14: sleep once T_SLEEP consecutive steals have
        // failed — i.e. on the T_SLEEP-th failure, not the (T_SLEEP+1)-th
        // (a historical off-by-one; `>` made every threshold behave one
        // larger than configured).
        return failed_steals_ >= t_sleep_ ? StealOutcome::kSleep
                                          : StealOutcome::kYield;
    }
    return StealOutcome::kRetry;
  }

  /// Called when the worker actually goes to sleep; the counter restarts
  /// so a woken worker gets a full T_SLEEP budget again.
  constexpr void on_sleep() noexcept { failed_steals_ = 0; }

  [[nodiscard]] constexpr int failed_steals() const noexcept {
    return failed_steals_;
  }
  [[nodiscard]] constexpr SchedMode mode() const noexcept { return mode_; }
  [[nodiscard]] constexpr int t_sleep() const noexcept { return t_sleep_; }

  /// Adjust the threshold at runtime (adaptive T_SLEEP extension; the
  /// paper fixes it at k, §3.4, and sketches adaptivity as future work).
  constexpr void set_t_sleep(int t_sleep) noexcept {
    t_sleep_ = clamp_t_sleep(t_sleep);
  }

 private:
  static constexpr int clamp_t_sleep(int t_sleep) noexcept {
    return t_sleep > kFailedStealsSaturation ? kFailedStealsSaturation
                                             : t_sleep;
  }

  SchedMode mode_;
  int t_sleep_;
  int failed_steals_ = 0;
};

}  // namespace dws
