// POSIX shared-memory backend for the core allocation table, matching the
// paper's implementation note (§3.4): "the first-launched work-stealing
// program creates a new file and maps the file into the shared memory
// using mmap(); ... all the following programs can easily access the core
// allocation table".
//
// We use shm_open() + mmap() with a create-or-attach protocol: O_CREAT
// with O_EXCL distinguishes "I created the segment and must format it"
// from "someone else already formatted it"; attachers then wait on the
// segment size and the table's atomic magic word before trusting the
// contents. Both waits are *bounded* (a creator can die at any point of
// its init sequence) and surface as TableAttachError on expiry.
#pragma once

#include <chrono>
#include <memory>
#include <string>

#include "core/core_table.hpp"

namespace dws {

/// Owning cross-process table. Every co-running process constructs one
/// with the same `name` and (num_cores, num_programs); exactly one of them
/// formats the segment.
class CoreTableShm {
 public:
  struct Options {
    /// Upper bound on how long an attacher waits for the creator to
    /// ftruncate the segment and publish the table magic word (each wait
    /// is bounded by this independently; both use exponential backoff).
    std::chrono::milliseconds attach_timeout{CoreTable::kDefaultAttachTimeout};
  };

  /// `name` must start with '/' per POSIX (it is passed to shm_open).
  /// Throws std::system_error on shm_open/ftruncate/mmap failure and
  /// TableAttachError (a std::system_error subclass) when the creator
  /// died mid-initialization and the attach handshake timed out. No fd,
  /// mapping, or (for the creator) segment name is leaked on any throw
  /// path.
  CoreTableShm(const std::string& name, unsigned num_cores,
               unsigned num_programs);
  CoreTableShm(const std::string& name, unsigned num_cores,
               unsigned num_programs, Options options);

  CoreTableShm(const CoreTableShm&) = delete;
  CoreTableShm& operator=(const CoreTableShm&) = delete;

  ~CoreTableShm();

  [[nodiscard]] CoreTable& table() noexcept { return *table_; }
  [[nodiscard]] const CoreTable& table() const noexcept { return *table_; }

  /// True if this process created (and formatted) the segment.
  [[nodiscard]] bool is_creator() const noexcept { return creator_; }

  /// Remove the named segment from the system (idempotent). Call after all
  /// co-running programs have exited, e.g. from the launcher — or to clear
  /// the residue of a creator that crashed mid-init (a TableAttachError
  /// from the constructor signals exactly that).
  static void remove(const std::string& name) noexcept;

 private:
  std::string name_;
  void* mapping_ = nullptr;
  std::size_t bytes_ = 0;
  bool creator_ = false;
  std::unique_ptr<CoreTable> table_;
};

}  // namespace dws
