#include "core/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

namespace dws {

namespace {

/// Remote-socket tier from a hop count (1 = adjacent): FAR for one hop,
/// VERYFAR beyond. Same-socket (0 hops) never reaches here.
constexpr std::uint8_t remote_tier(unsigned hops) noexcept {
  return static_cast<std::uint8_t>(hops <= 1 ? DistanceTier::kFar
                                             : DistanceTier::kVeryFar);
}

/// Read a small non-negative integer from a sysfs file; -1 on failure.
long read_sysfs_long(const std::string& path) {
  std::ifstream in(path);
  long v = -1;
  if (!(in >> v) || v < 0) return -1;
  return v;
}

}  // namespace

Topology::Topology(unsigned num_sockets, std::vector<std::uint8_t> socket_of,
                   std::vector<std::uint32_t> group_of,
                   std::vector<std::uint8_t> socket_tier)
    : num_sockets_(num_sockets),
      socket_of_(std::move(socket_of)),
      group_of_(std::move(group_of)),
      socket_tier_(std::move(socket_tier)) {
  // Flat iff one socket and no two distinct cores share an SMT group.
  flat_ = num_sockets_ == 1;
  if (flat_) {
    std::set<std::uint32_t> groups(group_of_.begin(), group_of_.end());
    flat_ = groups.size() == group_of_.size();
  }
}

Topology Topology::synthetic(unsigned num_cores, unsigned num_sockets,
                             unsigned smt_per_core) {
  if (num_cores == 0) num_cores = 1;
  num_sockets = std::clamp(num_sockets, 1u, num_cores);
  smt_per_core = std::clamp(smt_per_core, 1u, num_cores);

  // Same contiguous ceil-division split as SimParams::socket_of, so the
  // simulator's cache model and this machine model always agree.
  const unsigned per = (num_cores + num_sockets - 1) / num_sockets;
  std::vector<std::uint8_t> socket_of(num_cores);
  std::vector<std::uint32_t> group_of(num_cores);
  for (CoreId c = 0; c < num_cores; ++c) {
    socket_of[c] = static_cast<std::uint8_t>(c / per);
    group_of[c] = c / smt_per_core;
  }

  // Linear-chain socket adjacency: |sa - sb| hops.
  std::vector<std::uint8_t> tier(static_cast<std::size_t>(num_sockets) *
                                 num_sockets);
  for (unsigned a = 0; a < num_sockets; ++a) {
    for (unsigned b = 0; b < num_sockets; ++b) {
      tier[a * num_sockets + b] =
          a == b ? static_cast<std::uint8_t>(DistanceTier::kNear)
                 : remote_tier(a > b ? a - b : b - a);
    }
  }
  return Topology(num_sockets, std::move(socket_of), std::move(group_of),
                  std::move(tier));
}

Topology Topology::detect(unsigned num_cores) {
  if (num_cores == 0) num_cores = 1;
  const std::string base = "/sys/devices/system/cpu/cpu";

  // Per-cpu package + core id; any gap falls back to the flat layout.
  std::vector<long> package(num_cores), core_id(num_cores);
  for (unsigned c = 0; c < num_cores; ++c) {
    const std::string dir = base + std::to_string(c) + "/topology/";
    package[c] = read_sysfs_long(dir + "physical_package_id");
    core_id[c] = read_sysfs_long(dir + "core_id");
    if (package[c] < 0 || core_id[c] < 0) return uniform(num_cores);
  }

  // Dense socket ids in first-seen order; dense SMT groups keyed on
  // (package, core_id).
  std::map<long, std::uint8_t> socket_id;
  std::map<std::pair<long, long>, std::uint32_t> group_id;
  std::vector<std::uint8_t> socket_of(num_cores);
  std::vector<std::uint32_t> group_of(num_cores);
  for (unsigned c = 0; c < num_cores; ++c) {
    auto s = socket_id.emplace(package[c],
                               static_cast<std::uint8_t>(socket_id.size()));
    socket_of[c] = s.first->second;
    auto g = group_id.emplace(std::make_pair(package[c], core_id[c]),
                              static_cast<std::uint32_t>(group_id.size()));
    group_of[c] = g.first->second;
  }
  const auto num_sockets = static_cast<unsigned>(socket_id.size());
  if (num_sockets > 255) return uniform(num_cores);

  // Remote tiers from the NUMA distance table when the node count matches
  // the socket count (the common 1-node-per-socket case): the smallest
  // remote distance is FAR, anything larger VERYFAR. Otherwise every
  // remote socket is one hop (FAR).
  std::vector<std::uint8_t> tier(static_cast<std::size_t>(num_sockets) *
                                 num_sockets);
  std::vector<std::vector<long>> node_dist;
  for (unsigned n = 0; n < num_sockets; ++n) {
    std::ifstream in("/sys/devices/system/node/node" + std::to_string(n) +
                     "/distance");
    std::vector<long> row;
    long v = 0;
    while (in >> v) row.push_back(v);
    if (row.size() != num_sockets) {
      node_dist.clear();
      break;
    }
    node_dist.push_back(std::move(row));
  }
  long min_remote = -1;
  if (!node_dist.empty()) {
    for (unsigned a = 0; a < num_sockets; ++a) {
      for (unsigned b = 0; b < num_sockets; ++b) {
        if (a == b) continue;
        // Symmetrize defensively; sysfs tables occasionally are not.
        const long d = std::max(node_dist[a][b], node_dist[b][a]);
        node_dist[a][b] = node_dist[b][a] = d;
        if (min_remote < 0 || d < min_remote) min_remote = d;
      }
    }
  }
  for (unsigned a = 0; a < num_sockets; ++a) {
    for (unsigned b = 0; b < num_sockets; ++b) {
      if (a == b) {
        tier[a * num_sockets + b] =
            static_cast<std::uint8_t>(DistanceTier::kNear);
      } else if (min_remote > 0) {
        tier[a * num_sockets + b] =
            remote_tier(node_dist[a][b] <= min_remote ? 1 : 2);
      } else {
        tier[a * num_sockets + b] = remote_tier(1);
      }
    }
  }
  return Topology(num_sockets, std::move(socket_of), std::move(group_of),
                  std::move(tier));
}

Topology make_topology(const Config& cfg, unsigned num_cores) {
  if (cfg.num_sockets == 0) return Topology::detect(num_cores);
  return Topology::synthetic(num_cores, cfg.num_sockets, cfg.smt_per_core);
}

}  // namespace dws
