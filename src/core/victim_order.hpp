// Locality-aware victim ordering for Algorithm 1's steal attempts.
//
// distbdd-spin17's wstealer buckets the other workers into the four
// distance tiers of core/topology.hpp and steals near-first: all VERYNEAR
// victims are probed before any NEAR one, and so on. TieredVictimOrder
// packages that ordering as pure policy (no threads, no atomics — the
// same class drives the real runtime's workers and the simulator):
//
//  * victims are bucketed by distance(self, v) once, at construction;
//  * a *sweep* probes every victim exactly once, tiers in near-to-far
//    order, uniformly shuffled within each tier (so equally-near victims
//    share the load instead of core 0 being everyone's first target);
//  * next() hands out one victim per call and keeps a cursor, preserving
//    Algorithm 1's one-attempt-per-iteration accounting (the failed-steal
//    counter and T_SLEEP semantics are untouched);
//  * restart() rewinds to the nearest tier — called after a successful
//    steal, so every fresh hunger episode probes near victims first.
//
// Starvation-freedom: a sweep is a permutation of all victims, the cursor
// only rewinds on success (the thief is no longer hungry) or wrap-around,
// so a continuously failing thief probes every victim within n-1
// consecutive attempts regardless of the shuffles — no victim can be
// missed forever. tests/test_check_victims.cpp certifies this
// exhaustively over the shuffle nondeterminism.
#pragma once

#include <cstddef>
#include <vector>

#include "core/topology.hpp"
#include "core/types.hpp"

namespace dws {

/// Sentinel for "no victim exists" (single-worker programs).
inline constexpr unsigned kNoVictim = ~0u;

/// The paper's original selection: one victim uniformly at random among
/// the `num_workers - 1` others. The skip-self mapping keeps the draw
/// uniform (victim ids >= self shift up by one); the n <= 1 guard owns
/// the single-worker edge where rng.next_below(0) has no valid draw.
template <typename Rng>
[[nodiscard]] unsigned uniform_victim(Rng& rng, unsigned num_workers,
                                      unsigned self) {
  if (num_workers <= 1) return kNoVictim;
  auto victim = static_cast<unsigned>(rng.next_below(num_workers - 1));
  if (victim >= self) ++victim;
  return victim;
}

/// One victim pick: who to probe and how far away they are (the tier
/// indexes WorkerStats' per-tier steal counters).
struct VictimPick {
  unsigned victim = kNoVictim;
  DistanceTier tier = DistanceTier::kVeryFar;
};

class TieredVictimOrder {
 public:
  TieredVictimOrder() = default;

  /// Order the victims of worker `self` among `num_workers` workers
  /// (worker id == core id) by distance tier, nearest first.
  TieredVictimOrder(const Topology& topo, unsigned self,
                    unsigned num_workers) {
    order_.reserve(num_workers > 0 ? num_workers - 1 : 0);
    tier_of_.reserve(order_.capacity());
    for (unsigned t = 0; t < kNumDistanceTiers; ++t) {
      const std::size_t begin = order_.size();
      for (unsigned v = 0; v < num_workers; ++v) {
        if (v == self) continue;
        if (static_cast<unsigned>(topo.distance(self, v)) != t) continue;
        order_.push_back(v);
        tier_of_.push_back(static_cast<DistanceTier>(t));
      }
      if (order_.size() > begin) {
        segments_.push_back({begin, order_.size()});
      }
    }
  }

  [[nodiscard]] bool empty() const noexcept { return order_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }

  /// The next victim of the current sweep. At each sweep start (first call,
  /// wrap-around, or after restart()) the within-tier order is reshuffled
  /// with `rng`; the tier order itself is fixed near-to-far.
  template <typename Rng>
  [[nodiscard]] VictimPick next(Rng& rng) {
    if (order_.empty()) return VictimPick{};
    if (cursor_ == 0) reshuffle(rng);
    const VictimPick pick{order_[cursor_], tier_of_[cursor_]};
    if (++cursor_ == order_.size()) cursor_ = 0;
    return pick;
  }

  /// Rewind to the nearest tier (the hunger episode ended: the next
  /// episode starts near-first again).
  void restart() noexcept { cursor_ = 0; }

 private:
  struct Segment {
    std::size_t begin, end;  // [begin, end) slice of order_ with one tier
  };

  template <typename Rng>
  void reshuffle(Rng& rng) {
    // Fisher-Yates within each tier segment; tiers never mix.
    for (const Segment& seg : segments_) {
      for (std::size_t i = seg.end - seg.begin; i > 1; --i) {
        std::swap(order_[seg.begin + i - 1],
                  order_[seg.begin + rng.next_below(i)]);
      }
    }
  }

  std::vector<unsigned> order_;        // victims, grouped by tier near->far
  std::vector<DistanceTier> tier_of_;  // tier_of_[i] = tier of order_[i]
  std::vector<Segment> segments_;      // non-empty tier slices of order_
  std::size_t cursor_ = 0;
};

}  // namespace dws
