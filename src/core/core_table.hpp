// The core allocation table (§3.1, Table 1): one slot per hardware core
// recording which program's worker is currently *active* on that core
// (0 = free). Co-running programs coordinate core exchange exclusively
// through lock-free CAS operations on this table — there is no centralized
// OS-level allocator, which is the paper's headline structural claim.
//
// Each core also has a static *home* program given by the initial
// equipartition: with k cores and m declared programs, program i (1-based)
// homes the contiguous block {j : j*m/k == i-1}. A program may *claim* any
// free core, but may *reclaim* (take back from a borrower) only its home
// cores — the paper's third coordinator constraint ("a program cannot take
// the cores that are not released by other programs", §3.3).
//
// The same layout is used over private memory (CoreTableLocal, for
// co-running several Scheduler instances inside one process: tests,
// benches, the simulator) and over POSIX shared memory (CoreTableShm in
// core_table_shm.hpp, for genuine multi-process co-running as in the
// paper's mmap() implementation, §3.4).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <system_error>
#include <vector>

#include "core/core_ops.hpp"
#include "core/types.hpp"
#include "util/layout.hpp"

namespace dws {

/// Thrown when adopting an existing table block fails: the creator never
/// published the magic word within the attach timeout (it likely died
/// mid-initialization), or the adopted header disagrees with the
/// (num_cores, num_programs) this program was configured with. Derives
/// from std::system_error so existing catch sites keep working; the code
/// is std::errc::timed_out or std::errc::invalid_argument respectively.
class TableAttachError : public std::system_error {
 public:
  TableAttachError(std::errc errc, const std::string& what)
      : std::system_error(std::make_error_code(errc), what) {}
};

/// Non-owning view over a core-allocation-table memory block. All mutating
/// operations are lock-free and safe for concurrent use from any number of
/// threads or processes mapping the same block.
class CoreTable {
 public:
  /// Programs whose liveness can be tracked (records are statically sized
  /// so required_bytes stays a function of num_cores alone). Programs
  /// registered beyond this bound still work but are never stale-swept —
  /// with no liveness evidence the sweep conservatively leaves them alone.
  static constexpr unsigned kLivenessSlots = 64;

  /// Attach spin bound used when no explicit timeout is given.
  static constexpr std::chrono::milliseconds kDefaultAttachTimeout{5000};

  /// Bytes a table for `num_cores` cores occupies (header + liveness
  /// records + slots).
  [[nodiscard]] static std::size_t required_bytes(unsigned num_cores) noexcept;

  /// Wrap `mem` (which must be at least required_bytes(num_cores) and
  /// suitably aligned for std::atomic<uint32_t>). When `initialize` is
  /// true the block is formatted (all cores free, zero programs
  /// registered); otherwise the existing contents are adopted and
  /// (num_cores, num_programs) must match what the creator wrote.
  ///
  /// Adopting waits (bounded retry + exponential backoff, at most
  /// `attach_timeout`) for the creator to publish the magic word; a
  /// creator that died mid-format surfaces as TableAttachError instead of
  /// the historical unbounded spin. A header mismatch also throws
  /// TableAttachError. Formatting never throws.
  CoreTable(void* mem, unsigned num_cores, unsigned num_programs,
            bool initialize,
            std::chrono::milliseconds attach_timeout = kDefaultAttachTimeout);

  CoreTable(const CoreTable&) = delete;
  CoreTable& operator=(const CoreTable&) = delete;
  CoreTable(CoreTable&&) noexcept;
  CoreTable& operator=(CoreTable&&) noexcept;
  ~CoreTable() = default;

  [[nodiscard]] unsigned num_cores() const noexcept;
  /// Declared co-runner count m used for the home partition.
  [[nodiscard]] unsigned num_programs() const noexcept;

  /// Obtain a fresh 1-based program id. Ids beyond the declared m are
  /// legal but own no home cores (they can only use free cores).
  [[nodiscard]] ProgramId register_program() noexcept;

  /// Release every core currently used by `pid` and retire its liveness
  /// record (clean-exit path; co-runners stop tracking it immediately).
  void unregister_program(ProgramId pid) noexcept;

  /// Program ids handed out so far (sweepers iterate [1, this]).
  [[nodiscard]] unsigned registered_programs() const noexcept;

  // ---- Liveness records (crash tolerance) ----
  //
  // Each program binds its OS pid once after registering and then bumps a
  // monotonically increasing heartbeat epoch every coordinator period. A
  // co-runner whose epoch stalls and whose OS pid no longer exists is
  // declared dead by a surviving sweeper (see StaleSweeper), which then
  // force-releases every core the ghost still owns. os_pid == 0 means
  // "no liveness evidence": unbound, cleanly exited, or already swept —
  // such programs are never swept.

  /// Publish `os_pid` (must be nonzero) as the live process behind `pid`
  /// and start its epoch at 1. Returns false for ids beyond kLivenessSlots
  /// (those programs simply opt out of crash tracking).
  bool bind_liveness(ProgramId pid, std::uint32_t os_pid) noexcept;

  /// Bump `pid`'s heartbeat epoch. Called by the owner's coordinator every
  /// period; no-op for unbound/out-of-range ids.
  void heartbeat(ProgramId pid) noexcept;

  /// Current heartbeat epoch of `pid` (0 = never bound / out of range).
  [[nodiscard]] std::uint64_t liveness_epoch(ProgramId pid) const noexcept;

  /// OS pid bound to `pid`, or 0 when there is no liveness evidence.
  [[nodiscard]] std::uint32_t liveness_os_pid(ProgramId pid) const noexcept;

  /// CAS `pid`'s liveness record from `expected_os_pid` to 0. The winning
  /// caller is the unique agent allowed to recover the program's cores —
  /// this is what keeps concurrent sweepers from double-recovering.
  bool retire_liveness(ProgramId pid, std::uint32_t expected_os_pid) noexcept;

  /// Force-release every core still owned by `pid` (CAS pid -> free per
  /// slot; racing transitions lose or win per-slot, never corrupt).
  /// Returns the cores actually freed by this call. Only call after
  /// winning retire_liveness for a confirmed-dead program.
  std::vector<CoreId> force_release_all(ProgramId pid) noexcept;

  /// Current active program on `core`, or kNoProgram if free.
  [[nodiscard]] ProgramId user_of(CoreId core) const noexcept;

  /// Static home owner of `core` under the equipartition.
  [[nodiscard]] ProgramId home_of(CoreId core) const noexcept;

  /// CAS free -> pid. True iff this call performed the transition.
  bool try_claim(CoreId core, ProgramId pid) noexcept;

  /// Take a *home* core of `pid` back from whichever program borrowed it
  /// (§3.3 cases 2–3). Fails if the core is free, already ours, or not a
  /// home core of `pid`. The evicted borrower's worker observes the change
  /// at its next policy check and goes to sleep (see Worker::should_vacate).
  bool try_reclaim(CoreId core, ProgramId pid) noexcept;

  /// CAS pid -> free. True iff `pid` was the user. A worker whose core was
  /// reclaimed from under it calls this and fails harmlessly.
  bool release(CoreId core, ProgramId pid) noexcept;

  /// Claim all currently-free home cores of `pid`; returns those claimed.
  /// Used at program start to realize the initial equipartition (§3.1).
  std::vector<CoreId> claim_home_cores(ProgramId pid) noexcept;

  // ---- Demand-snapshot counters (coordinator inputs, §3.3) ----

  /// N_f: cores currently free.
  [[nodiscard]] unsigned count_free() const noexcept;
  /// N_r: home cores of `pid` currently used by *other* programs.
  [[nodiscard]] unsigned count_borrowed_from(ProgramId pid) const noexcept;
  /// Cores on which `pid` is the active user.
  [[nodiscard]] unsigned count_active(ProgramId pid) const noexcept;

  [[nodiscard]] std::vector<CoreId> free_cores() const;
  [[nodiscard]] std::vector<CoreId> borrowed_home_cores(ProgramId pid) const;
  [[nodiscard]] std::vector<CoreId> home_cores(ProgramId pid) const;
  [[nodiscard]] std::vector<CoreId> cores_used_by(ProgramId pid) const;

 private:
  friend struct dws::layout::Access;  // layout_audit reads private layouts

  struct Header {
    DWS_SHARED std::atomic<std::uint32_t> magic;
    /// Slot-array layout revision baked into required_bytes/slots(). Kept
    /// as an explicit header word *in addition to* the magic bump so a
    /// future-version attacher can print which revision it found instead
    /// of just timing out on a foreign magic.
    std::uint32_t layout_version;
    std::uint32_t num_cores;
    std::uint32_t num_programs;
    DWS_SHARED std::atomic<std::uint32_t> registered;
  };
  /// One per program id in [1, kLivenessSlots]; lives between the header
  /// and the slot array. Four records pack per cache line across
  /// processes, which is a cross-domain packing by the layout discipline:
  /// epoch is owner-heartbeat-written, os_pid is CAS-retired by foreign
  /// sweepers. Heartbeats tick once per coordinator period (milliseconds),
  /// so the interference traffic is negligible and striding 64 records to
  /// a line each is not worth 3 KiB of shared memory.
  // dws-layout: packed-ok heartbeat-rate writes only, one tick per
  // coordinator period, measured interference is noise
  struct LivenessRecord {
    DWS_SHARED std::atomic<std::uint32_t> os_pid;  ///< 0 = unbound/swept
    DWS_OWNED_BY(program)
    std::atomic<std::uint64_t> epoch;  ///< heartbeat counter, 0 = unbound
  };
  /// Cacheline-strided CAS slot (layout revision 2). Every co-running
  /// process hammers its claim/release CAS at these words, so each lives
  /// alone on its line; the historical packed layout (16 slots/line) is
  /// kept as PackedCoreSlot for the A/B guardrail and model checker.
  using Slot = CoreOps<StdAtomicsPolicy>::Slot;

  /// Layout revision 2: strided slot array. Revision 1 (packed
  /// std::atomic<uint32_t> slots) published magic 0xD1575AB1; the magic is
  /// bumped with the layout so revision-1 binaries attaching a revision-2
  /// segment (or vice versa) fail the attach handshake with a typed
  /// TableAttachError instead of silently indexing the wrong offsets.
  static constexpr std::uint32_t kLayoutVersion = 2;
  static constexpr std::uint32_t kMagic = 0xD1575AB2u;
  /// Magics of retired layout revisions, recognized only to fail fast
  /// with a better message than an attach timeout.
  static constexpr std::uint32_t kRetiredMagics[] = {0xD1575AB1u};

  [[nodiscard]] Header* header() const noexcept {
    return static_cast<Header*>(mem_);
  }
  [[nodiscard]] LivenessRecord* liveness() const noexcept;
  [[nodiscard]] Slot* slots() const noexcept;

  void* mem_ = nullptr;
};

/// Owning in-process table: co-run several Scheduler instances (or the
/// simulator's virtual programs) inside one address space.
class CoreTableLocal {
 public:
  CoreTableLocal(unsigned num_cores, unsigned num_programs);

  [[nodiscard]] CoreTable& table() noexcept { return *table_; }
  [[nodiscard]] const CoreTable& table() const noexcept { return *table_; }

 private:
  std::unique_ptr<std::byte[]> storage_;
  std::unique_ptr<CoreTable> table_;
};

}  // namespace dws
