// The core allocation table (§3.1, Table 1): one slot per hardware core
// recording which program's worker is currently *active* on that core
// (0 = free). Co-running programs coordinate core exchange exclusively
// through lock-free CAS operations on this table — there is no centralized
// OS-level allocator, which is the paper's headline structural claim.
//
// Each core also has a static *home* program given by the initial
// equipartition: with k cores and m declared programs, program i (1-based)
// homes the contiguous block {j : j*m/k == i-1}. A program may *claim* any
// free core, but may *reclaim* (take back from a borrower) only its home
// cores — the paper's third coordinator constraint ("a program cannot take
// the cores that are not released by other programs", §3.3).
//
// The same layout is used over private memory (CoreTableLocal, for
// co-running several Scheduler instances inside one process: tests,
// benches, the simulator) and over POSIX shared memory (CoreTableShm in
// core_table_shm.hpp, for genuine multi-process co-running as in the
// paper's mmap() implementation, §3.4).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.hpp"

namespace dws {

/// Non-owning view over a core-allocation-table memory block. All mutating
/// operations are lock-free and safe for concurrent use from any number of
/// threads or processes mapping the same block.
class CoreTable {
 public:
  /// Bytes a table for `num_cores` cores occupies (header + slots).
  [[nodiscard]] static std::size_t required_bytes(unsigned num_cores) noexcept;

  /// Wrap `mem` (which must be at least required_bytes(num_cores) and
  /// suitably aligned for std::atomic<uint32_t>). When `initialize` is
  /// true the block is formatted (all cores free, zero programs
  /// registered); otherwise the existing contents are adopted and
  /// (num_cores, num_programs) must match what the creator wrote.
  CoreTable(void* mem, unsigned num_cores, unsigned num_programs,
            bool initialize);

  CoreTable(const CoreTable&) = delete;
  CoreTable& operator=(const CoreTable&) = delete;
  CoreTable(CoreTable&&) noexcept;
  CoreTable& operator=(CoreTable&&) noexcept;
  ~CoreTable() = default;

  [[nodiscard]] unsigned num_cores() const noexcept;
  /// Declared co-runner count m used for the home partition.
  [[nodiscard]] unsigned num_programs() const noexcept;

  /// Obtain a fresh 1-based program id. Ids beyond the declared m are
  /// legal but own no home cores (they can only use free cores).
  [[nodiscard]] ProgramId register_program() noexcept;

  /// Release every core currently used by `pid`.
  void unregister_program(ProgramId pid) noexcept;

  /// Current active program on `core`, or kNoProgram if free.
  [[nodiscard]] ProgramId user_of(CoreId core) const noexcept;

  /// Static home owner of `core` under the equipartition.
  [[nodiscard]] ProgramId home_of(CoreId core) const noexcept;

  /// CAS free -> pid. True iff this call performed the transition.
  bool try_claim(CoreId core, ProgramId pid) noexcept;

  /// Take a *home* core of `pid` back from whichever program borrowed it
  /// (§3.3 cases 2–3). Fails if the core is free, already ours, or not a
  /// home core of `pid`. The evicted borrower's worker observes the change
  /// at its next policy check and goes to sleep (see Worker::should_vacate).
  bool try_reclaim(CoreId core, ProgramId pid) noexcept;

  /// CAS pid -> free. True iff `pid` was the user. A worker whose core was
  /// reclaimed from under it calls this and fails harmlessly.
  bool release(CoreId core, ProgramId pid) noexcept;

  /// Claim all currently-free home cores of `pid`; returns those claimed.
  /// Used at program start to realize the initial equipartition (§3.1).
  std::vector<CoreId> claim_home_cores(ProgramId pid) noexcept;

  // ---- Demand-snapshot counters (coordinator inputs, §3.3) ----

  /// N_f: cores currently free.
  [[nodiscard]] unsigned count_free() const noexcept;
  /// N_r: home cores of `pid` currently used by *other* programs.
  [[nodiscard]] unsigned count_borrowed_from(ProgramId pid) const noexcept;
  /// Cores on which `pid` is the active user.
  [[nodiscard]] unsigned count_active(ProgramId pid) const noexcept;

  [[nodiscard]] std::vector<CoreId> free_cores() const;
  [[nodiscard]] std::vector<CoreId> borrowed_home_cores(ProgramId pid) const;
  [[nodiscard]] std::vector<CoreId> home_cores(ProgramId pid) const;
  [[nodiscard]] std::vector<CoreId> cores_used_by(ProgramId pid) const;

 private:
  struct Header {
    std::atomic<std::uint32_t> magic;
    std::uint32_t num_cores;
    std::uint32_t num_programs;
    std::atomic<std::uint32_t> registered;
  };
  using Slot = std::atomic<std::uint32_t>;

  static constexpr std::uint32_t kMagic = 0xD1575AB1u;

  [[nodiscard]] Header* header() const noexcept {
    return static_cast<Header*>(mem_);
  }
  [[nodiscard]] Slot* slots() const noexcept;

  void* mem_ = nullptr;
};

/// Owning in-process table: co-run several Scheduler instances (or the
/// simulator's virtual programs) inside one address space.
class CoreTableLocal {
 public:
  CoreTableLocal(unsigned num_cores, unsigned num_programs);

  [[nodiscard]] CoreTable& table() noexcept { return *table_; }
  [[nodiscard]] const CoreTable& table() const noexcept { return *table_; }

 private:
  std::unique_ptr<std::byte[]> storage_;
  std::unique_ptr<CoreTable> table_;
};

}  // namespace dws
