// Shared vocabulary types for the DWS policy layer.
#pragma once

#include <cstdint>
#include <string>

namespace dws {

/// 1-based program identifier; 0 is reserved for "no program / free".
using ProgramId = std::uint32_t;
inline constexpr ProgramId kNoProgram = 0;

/// 0-based hardware (or simulated) core index.
using CoreId = std::uint32_t;

/// Scheduling modes evaluated in the paper (§4) plus classic work-stealing.
enum class SchedMode : int {
  /// Pure random work-stealing: thieves spin on failed steals, never yield
  /// or sleep. The single-program gold standard (§4.4 comparison point).
  kClassic = 0,
  /// Time-sharing + ABP yielding: a thief calls yield() after each failed
  /// steal so co-located threads can run (Arora/Blumofe/Plaxton; the
  /// behaviour of MIT Cilk and TBB the paper compares against).
  kAbp = 1,
  /// Space-sharing + equipartition: each of the m programs is statically
  /// pinned to a disjoint k/m-core group; inside the group workers behave
  /// like ABP.
  kEp = 2,
  /// The paper's contribution: demand-aware work-stealing. Workers sleep
  /// after T_SLEEP consecutive failed steals; a per-program coordinator
  /// wakes workers onto free/reclaimable cores (§3).
  kDws = 3,
  /// Ablation from §4.2: DWS sleep/wake behaviour but no coordinator-driven
  /// core exchange — cores are not kept disjoint across programs.
  kDwsNc = 4,
  /// Balanced Work Stealing (Ding et al., EuroSys'12), the related-work
  /// system the paper positions against (§5): time-sharing, but a thief
  /// that fails to steal yields its core *to a busy worker of the same
  /// program* instead of to whoever the OS picks next. The simulator
  /// implements the directed yield; the real runtime approximates it
  /// with sched_yield (Linux exposes no yield_to without the BWS kernel
  /// patch).
  kBws = 5,
};

[[nodiscard]] constexpr const char* to_string(SchedMode m) noexcept {
  switch (m) {
    case SchedMode::kClassic: return "CLASSIC";
    case SchedMode::kAbp: return "ABP";
    case SchedMode::kEp: return "EP";
    case SchedMode::kDws: return "DWS";
    case SchedMode::kDwsNc: return "DWS-NC";
    case SchedMode::kBws: return "BWS";
  }
  return "?";
}

/// Parse a mode name (as produced by to_string, case-sensitive).
/// Returns true on success.
[[nodiscard]] inline bool parse_mode(const std::string& s, SchedMode& out) {
  if (s == "CLASSIC") { out = SchedMode::kClassic; return true; }
  if (s == "ABP") { out = SchedMode::kAbp; return true; }
  if (s == "EP") { out = SchedMode::kEp; return true; }
  if (s == "DWS") { out = SchedMode::kDws; return true; }
  if (s == "DWS-NC" || s == "DWSNC") { out = SchedMode::kDwsNc; return true; }
  if (s == "BWS") { out = SchedMode::kBws; return true; }
  return false;
}

/// How a thief orders its victims (see core/topology.hpp for the tiers).
enum class VictimPolicy : int {
  /// The paper's choice: one uniformly random victim per attempt.
  kUniform = 0,
  /// Locality-aware: exhaust VERYNEAR victims before NEAR before FAR
  /// before VERYFAR (distbdd-spin17 wstealer ordering), random within a
  /// tier. On a flat machine this degenerates to a random-order sweep.
  kTiered = 1,
};

[[nodiscard]] constexpr const char* to_string(VictimPolicy p) noexcept {
  switch (p) {
    case VictimPolicy::kUniform: return "UNIFORM";
    case VictimPolicy::kTiered: return "TIERED";
  }
  return "?";
}

/// Parse a victim-policy name (as produced by to_string, case-sensitive).
[[nodiscard]] inline bool parse_victim_policy(const std::string& s,
                                              VictimPolicy& out) {
  if (s == "UNIFORM") { out = VictimPolicy::kUniform; return true; }
  if (s == "TIERED") { out = VictimPolicy::kTiered; return true; }
  return false;
}

/// True for modes in which workers participate in the sleep/wake protocol.
[[nodiscard]] constexpr bool mode_sleeps(SchedMode m) noexcept {
  return m == SchedMode::kDws || m == SchedMode::kDwsNc;
}

/// True for modes that maintain the disjoint-core invariant via the core
/// allocation table (initial equipartition + coordinator exchange).
[[nodiscard]] constexpr bool mode_space_shares(SchedMode m) noexcept {
  return m == SchedMode::kEp || m == SchedMode::kDws;
}

}  // namespace dws
