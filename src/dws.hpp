// Umbrella header for the DWS library: everything a downstream user
// needs to schedule work and co-run programs.
//
//   #include "dws.hpp"
//
//   dws::Config cfg;                       // policy + machine knobs
//   cfg.mode = dws::SchedMode::kDws;
//   dws::rt::Scheduler sched(cfg);         // one work-stealing program
//   dws::rt::parallel_for(sched, 0, n, grain, body);
//
// Co-running (one process):   dws::CoreTableLocal + shared table pointer.
// Co-running (processes):     dws::CoreTableShm over shm_open/mmap.
// Observability:              dws::rt::Observer.
// Simulation & evaluation:    sim/engine.hpp, harness/experiment.hpp
// (deliberately not pulled in here — they are research tooling, not the
// scheduling library).
#pragma once

#include "core/config.hpp"           // IWYU pragma: export
#include "core/core_table.hpp"       // IWYU pragma: export
#include "core/core_table_shm.hpp"   // IWYU pragma: export
#include "core/types.hpp"            // IWYU pragma: export
#include "runtime/api.hpp"           // IWYU pragma: export
#include "runtime/observer.hpp"      // IWYU pragma: export
#include "runtime/scheduler.hpp"     // IWYU pragma: export
