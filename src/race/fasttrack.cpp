#include "race/fasttrack.hpp"

#include <algorithm>
#include <string>

namespace dws::race {

namespace {

constexpr unsigned kGranuleShift = 3;  // 8-byte shadow granules

std::uint64_t next_session_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

FastTrack::FastTrack(bool check_deadlocks)
    : session_(next_session_id()), shards_(new Shard[kShards]) {
  if (check_deadlocks) lockgraph_ = std::make_unique<LockGraph>();
}

FastTrack::~FastTrack() = default;

FastTrack::ThreadState& FastTrack::my_state() {
  // Per-thread cache keyed by session id: worker threads outlive
  // detector sessions, and a later detector may reuse this address.
  thread_local struct {
    std::uint64_t session = 0;
    ThreadState* ts = nullptr;
  } cache;
  if (cache.session != session_) {
    std::lock_guard<std::mutex> lock(states_m_);
    states_.emplace_back();
    ThreadState& ts = states_.back();
    // The thread's root frame gets its own clock index, like any task.
    // A frame needs a nonzero epoch before its first access: clock 0
    // compares as ordered-to-everyone (VC entries default to 0).
    ts.slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
    ts.vc.set(ts.slot, 1);
    // sp_vc is lazy: a frame's own entry appears at its first lock
    // acquire (see lock_acquire), so lock-free frames never resize it.
    ts.sink = std::make_unique<Sink>(this, &ts);
    refresh_prov(ts);  // interns {"root"} -> id 0
    cache.session = session_;
    cache.ts = &ts;
  }
  return *cache.ts;
}

void FastTrack::refresh_prov(ThreadState& ts) {
  std::string key;
  for (const std::string& hop : ts.chain) {
    key += hop;
    key += '\x1f';
  }
  std::lock_guard<std::mutex> lock(prov_m_);
  const auto next = static_cast<std::uint32_t>(prov_chains_.size());
  auto [it, inserted] = prov_ids_.emplace(std::move(key), next);
  if (inserted) prov_chains_.push_back(ts.chain);
  ts.prov = it->second;
}

void FastTrack::refresh_locks(ThreadState& ts) {
  std::vector<std::string> names;
  names.reserve(ts.held.size());
  for (const HeldLock& h : ts.held) names.push_back(h.name);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  std::string key;
  for (const std::string& n : names) {
    key += n;
    key += '\x1f';
  }
  std::lock_guard<std::mutex> lock(prov_m_);
  const auto next = static_cast<std::uint32_t>(lock_lists_.size());
  auto [it, inserted] = lock_list_ids_.emplace(std::move(key), next);
  if (inserted) lock_lists_.push_back(std::move(names));
  ts.locks = it->second;
}

// ---- ParallelHook edges ----

void* FastTrack::on_task_published(rt::TaskGroup& /*group*/) {
  ThreadState& ts = my_state();
  auto* tok = new Token;
  // Everything the spawning frame did so far happens-before the child.
  tok->msg = ts.vc;
  // Advance the spawner's epoch: its post-spawn work is parallel with
  // the child (ESP semantics — the child stays parallel with the
  // spawner's continuation until the group's wait).
  ts.vc.set(ts.slot, ts.vc.get(ts.slot) + 1);
  if (lockgraph_ != nullptr) {
    // Copying an inherited-only (or empty) sp_vc is cheap; the epoch
    // advance is needed — and the frame's entry exists — only once this
    // frame has acquired a lock (an acquire after this spawn must come
    // out parallel with the child; one before it must not).
    tok->msg_sp = ts.sp_vc;
    const Clock sc = ts.sp_vc.get(ts.slot);
    if (sc != 0) ts.sp_vc.set(ts.slot, sc + 1);
  }

  std::string label =
      "spawn#" +
      std::to_string(spawn_ordinal_.fetch_add(1, std::memory_order_relaxed));
  if (!ts.regions.empty()) {
    label += " '";
    label += ts.regions.back();
    label += "'";
  }
  tok->chain = ts.chain;
  tok->chain.push_back(std::move(label));
  // Regions travel with the task: a region active at the spawn site
  // labels the child's nested spawns too, wherever they execute.
  tok->regions = ts.regions;
  return tok;
}

void FastTrack::on_task_begin(void* token) {
  auto* tok = static_cast<Token*>(token);
  ThreadState& ts = my_state();
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);

  // Save the interrupted frame (help-first waiters execute tasks inline;
  // tokens nest stack-fashion per thread).
  tok->saved_slot = ts.slot;
  tok->saved_vc = std::move(ts.vc);
  tok->saved_sp = std::move(ts.sp_vc);
  tok->saved_chain = std::move(ts.chain);
  tok->saved_regions = std::move(ts.regions);
  tok->saved_held = std::move(ts.held);
  tok->saved_prov = ts.prov;
  tok->saved_locks = ts.locks;

  // Open a fresh frame: a brand-new clock index whose inherited history
  // is exactly the spawn-site clock. Per-frame indices (not per-worker)
  // keep prefix coverage exact — tasks that share a worker share no
  // index, so they stay logically parallel (see fasttrack.hpp).
  ts.slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
  ts.vc = std::move(tok->msg);
  ts.vc.set(ts.slot, 1);
  if (lockgraph_ != nullptr) ts.sp_vc = std::move(tok->msg_sp);
  ts.chain = std::move(tok->chain);
  ts.regions = std::move(tok->regions);
  ts.held.clear();
  ts.locks = 0;
  refresh_prov(ts);

  tok->prev_sink = detail::tl_sink();
  detail::tl_sink() = ts.sink.get();
}

void FastTrack::on_task_end(void* token, rt::TaskGroup* group) {
  auto* tok = static_cast<Token*>(token);
  ThreadState& ts = my_state();
  if (group != nullptr) {
    // Completion edge: published before complete_one signals, so a
    // waiter released by the final decrement joins a complete clock.
    std::lock_guard<std::mutex> lock(groups_m_);
    GroupClocks& gc = group_vcs_[group];
    gc.vc.join(ts.vc);
    if (lockgraph_ != nullptr) gc.sp.join(ts.sp_vc);
  }
  ts.slot = tok->saved_slot;
  ts.vc = std::move(tok->saved_vc);
  ts.sp_vc = std::move(tok->saved_sp);
  ts.chain = std::move(tok->saved_chain);
  ts.regions = std::move(tok->saved_regions);
  ts.held = std::move(tok->saved_held);
  ts.prov = tok->saved_prov;
  ts.locks = tok->saved_locks;
  detail::tl_sink() = tok->prev_sink;
  delete tok;
}

void FastTrack::on_wait_done(rt::TaskGroup& group) {
  ThreadState& ts = my_state();
  std::lock_guard<std::mutex> lock(groups_m_);
  const auto it = group_vcs_.find(&group);
  if (it == group_vcs_.end()) return;  // nothing completed into it
  ts.vc.join(it->second.vc);
  if (lockgraph_ != nullptr) ts.sp_vc.join(it->second.sp);
  // Drop the mapping — TaskGroups are routinely stack-allocated, so a
  // later group at the same address must get a fresh join clock.
  group_vcs_.erase(it);
}

// ---- Locks (acquire joins, release publishes + advances) ----

std::int32_t FastTrack::intern_lock_locked(const void* lock,
                                           const char* name) {
  auto [it, inserted] =
      lock_ids_.emplace(lock, static_cast<std::int32_t>(lock_id_names_.size()));
  if (inserted) {
    lock_id_names_.push_back(name != nullptr
                                 ? std::string(name)
                                 : "lock#" + std::to_string(it->second + 1));
  } else if (name != nullptr &&
             lock_id_names_[static_cast<std::size_t>(it->second)].rfind(
                 "lock#", 0) == 0) {
    // A later annotation supplied the name an earlier anonymous
    // acquisition lacked; adopt it for all future reports.
    lock_id_names_[static_cast<std::size_t>(it->second)] = name;
  }
  return it->second;
}

void FastTrack::lock_acquire(ThreadState& ts, const void* lock,
                             const char* name) {
  std::int32_t id;
  std::string label;
  {
    std::lock_guard<std::mutex> g(locks_m_);
    id = intern_lock_locked(lock, name);
    label = lock_id_names_[static_cast<std::size_t>(id)];
  }
  // Deadlock edge: acquiring `id` while already holding others orders
  // them before it (pre-acquire held set; recursive re-acquisition
  // creates no edge). Parallelism against earlier events compares
  // structural clocks: earlier event E by frame f at structural clock c
  // is serial iff this frame's sp_vc already covers (f, c) — a relation
  // lock edges never feed, so the verdict is schedule-independent.
  if (lockgraph_ != nullptr && !ts.held.empty()) {
    bool recursive = false;
    std::vector<std::int32_t> gates;
    gates.reserve(ts.held.size());
    for (const HeldLock& h : ts.held) {
      if (h.id == id) recursive = true;
      gates.push_back(h.id);
    }
    if (!recursive) {
      std::sort(gates.begin(), gates.end());
      gates.erase(std::unique(gates.begin(), gates.end()), gates.end());
      // Lazy frame entry: materialize this frame's structural epoch on
      // first use, so frames that never lock never pay the O(slot)
      // resize (slots are per-frame and monotonically allocated).
      if (ts.sp_vc.get(ts.slot) == 0) ts.sp_vc.set(ts.slot, 1);
      const std::uint64_t tag = (static_cast<std::uint64_t>(ts.slot) << 32) |
                                ts.sp_vc.get(ts.slot);
      lockgraph_->record_acquire(
          id, gates, ts.chain, tag, [&ts](std::uint64_t other) {
            const auto slot = static_cast<std::size_t>(other >> 32);
            const auto clock = static_cast<Clock>(other & 0xFFFFFFFFULL);
            return clock > ts.sp_vc.get(slot);
          });
    }
  }
  ts.held.push_back(HeldLock{lock, id, std::move(label)});
  refresh_locks(ts);
  std::lock_guard<std::mutex> g(locks_m_);
  const auto it = lock_vcs_.find(lock);
  if (it != lock_vcs_.end()) ts.vc.join(it->second);
}

void FastTrack::lock_release(ThreadState& ts, const void* lock) {
  bool held = false;
  for (auto it = ts.held.rbegin(); it != ts.held.rend(); ++it) {
    if (it->addr == lock) {
      ts.held.erase(std::next(it).base());
      held = true;
      break;
    }
  }
  if (!held) return;  // release of a never-acquired lock
  refresh_locks(ts);
  {
    std::lock_guard<std::mutex> g(locks_m_);
    lock_vcs_[lock].join(ts.vc);
  }
  // Post-release work must not look ordered to the next acquirer.
  ts.vc.set(ts.slot, ts.vc.get(ts.slot) + 1);
}

// ---- Shadow checking ----

void FastTrack::check_granule(ThreadState& ts, std::uintptr_t granule,
                              bool is_write) {
  Shard& shard = shards_[granule & (kShards - 1)];
  std::lock_guard<std::mutex> lock(shard.m);
  ++shard.granules_checked;
  ShadowWord& w = shard.words[granule];
  const std::uintptr_t byte_addr = granule << kGranuleShift;
  const Epoch cur{ts.vc.get(ts.slot), ts.slot, ts.prov, ts.locks};

  const auto ordered = [&ts](const Epoch& e) {
    return e.slot == kNoSlot || e.clock <= ts.vc.get(e.slot);
  };

  if (is_write) {
    if (!ordered(w.write)) {
      record(byte_addr, w.write, Access::kWrite, Access::kWrite, ts);
    }
    if (w.read_frontier != nullptr) {
      for (const Epoch& e : *w.read_frontier) {
        if (!ordered(e)) record(byte_addr, e, Access::kRead, Access::kWrite, ts);
      }
    } else if (!ordered(w.read)) {
      record(byte_addr, w.read, Access::kRead, Access::kWrite, ts);
    }
    // The write dominates: prior reads either happened-before it or were
    // just reported; collapse back to the fast representation.
    w.write = cur;
    w.read = Epoch{};
    w.read_frontier.reset();
  } else {
    if (!ordered(w.write)) {
      record(byte_addr, w.write, Access::kWrite, Access::kRead, ts);
    }
    if (w.read_frontier != nullptr) {
      // Keep the frontier of pairwise-unordered reads: entries ordered
      // before this read are subsumed (a later writer unordered with a
      // dropped entry is also unordered with this read), and a frame's
      // own earlier reads are ordered by definition.
      auto& v = *w.read_frontier;
      v.erase(std::remove_if(v.begin(), v.end(), ordered), v.end());
      v.push_back(cur);
      if (v.size() == 1) {  // collapsed back to one reader
        w.read = v.front();
        w.read_frontier.reset();
      }
    } else if (w.read.slot == kNoSlot || ordered(w.read)) {
      // Single-epoch fast path: no prior read, or one this read
      // subsumes (same-frame reads are always ordered).
      w.read = cur;
    } else {
      // Concurrent readers: promote to a frontier so a later write
      // races against each of them.
      ++shard.read_promotions;
      w.read_frontier =
          std::make_unique<std::vector<Epoch>>(
              std::vector<Epoch>{w.read, cur});
      w.read = Epoch{};
    }
  }
}

void FastTrack::record(std::uintptr_t addr, const Epoch& prior,
                       Access prior_kind, Access current_kind,
                       const ThreadState& ts) {
  races_found_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(report_m_);
  const auto key = std::make_tuple(
      prior.prov, ts.prov,
      static_cast<std::uint8_t>((static_cast<unsigned>(prior_kind) << 1) |
                                static_cast<unsigned>(current_kind)));
  if (races_.size() >= kMaxReports || !reported_.insert(key).second) return;
  RaceReport r;
  r.addr = addr;
  r.prior = prior_kind;
  r.current = current_kind;
  {
    std::lock_guard<std::mutex> plock(prov_m_);
    r.prior_chain = prov_chains_[prior.prov];
    r.current_chain = prov_chains_[ts.prov];
    r.prior_locks = lock_lists_[prior.locks];
    r.current_locks = lock_lists_[ts.locks];
  }
  races_.push_back(std::move(r));
}

// ---- Sink plumbing ----

MemorySink* FastTrack::sink_for_current_thread() {
  return my_state().sink.get();
}

void FastTrack::Sink::on_access(const void* addr, std::size_t size,
                                std::size_t count,
                                std::ptrdiff_t stride_bytes, bool is_write) {
  if (size == 0) return;
  auto base = reinterpret_cast<std::uintptr_t>(addr);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uintptr_t lo = base >> kGranuleShift;
    const std::uintptr_t hi = (base + size - 1) >> kGranuleShift;
    for (std::uintptr_t g = lo; g <= hi; ++g) {
      owner_->check_granule(*ts_, g, is_write);
    }
    base += static_cast<std::uintptr_t>(stride_bytes);
  }
}

void FastTrack::Sink::on_region_enter(const char* name) {
  ts_->regions.push_back(name);
}

void FastTrack::Sink::on_region_exit() {
  if (!ts_->regions.empty()) ts_->regions.pop_back();
}

void FastTrack::Sink::on_lock_acquire(const void* lock, const char* name) {
  owner_->lock_acquire(*ts_, lock, name);
}

void FastTrack::Sink::on_lock_release(const void* lock) {
  owner_->lock_release(*ts_, lock);
}

// ---- Counters ----

std::uint64_t FastTrack::granules_checked() const noexcept {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < kShards; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].m);
    n += shards_[i].granules_checked;
  }
  return n;
}

std::uint64_t FastTrack::read_promotions() const noexcept {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < kShards; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].m);
    n += shards_[i].read_promotions;
  }
  return n;
}

std::size_t FastTrack::threads_seen() const {
  std::lock_guard<std::mutex> lock(states_m_);
  return states_.size();
}

std::size_t FastTrack::locks_seen() const {
  std::lock_guard<std::mutex> lock(locks_m_);
  return lock_id_names_.size();
}

DeadlockAnalysis FastTrack::analyze_deadlocks() const {
  if (lockgraph_ == nullptr) return {};
  // Post-session by contract, but take the interning lock anyway so the
  // name resolver can't race a stray late acquire.
  std::lock_guard<std::mutex> lock(locks_m_);
  return lockgraph_->analyze([this](std::int32_t id) {
    return lock_id_names_[static_cast<std::size_t>(id)];
  });
}

}  // namespace dws::race
