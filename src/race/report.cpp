#include "race/report.hpp"

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dws::race {

const char* access_name(Access a) noexcept {
  return a == Access::kWrite ? "write" : "read";
}

namespace {

void append_lock_list(std::ostringstream& os,
                      const std::vector<std::string>& locks) {
  if (locks.empty()) {
    os << "none";
    return;
  }
  os << "{";
  for (std::size_t i = 0; i < locks.size(); ++i) {
    if (i != 0) os << ", ";
    os << locks[i];
  }
  os << "}";
}

}  // namespace

std::string RaceReport::to_string() const {
  std::ostringstream os;
  os << "determinacy race on address 0x" << std::hex << addr << std::dec
     << ": prior " << access_name(prior) << " is logically parallel with "
     << access_name(current) << "\n  prior access:   ";
  for (std::size_t i = 0; i < prior_chain.size(); ++i) {
    if (i != 0) os << " > ";
    os << prior_chain[i];
  }
  os << "\n  current access: ";
  for (std::size_t i = 0; i < current_chain.size(); ++i) {
    if (i != 0) os << " > ";
    os << current_chain[i];
  }
  os << "\n  locks held:     prior ";
  append_lock_list(os, prior_locks);
  os << ", current ";
  append_lock_list(os, current_locks);
  if (prior_locks.empty() && current_locks.empty()) {
    os << " (no locks held by either access)";
  } else {
    // The locksets are disjoint or there would be no race; any lock from
    // either side, held around both accesses, serializes the pair.
    std::vector<std::string> would;
    would.insert(would.end(), prior_locks.begin(), prior_locks.end());
    would.insert(would.end(), current_locks.begin(), current_locks.end());
    os << " — disjoint; holding ";
    append_lock_list(os, would);
    os << " on both sides would have serialized the pair";
  }
  return os.str();
}

std::string DeadlockReport::to_string() const {
  std::ostringstream os;
  os << "potential deadlock: lock-order cycle ";
  for (const DeadlockEdge& e : cycle) os << e.held << " -> ";
  if (!cycle.empty()) os << cycle.front().held;
  for (const DeadlockEdge& e : cycle) {
    os << "\n  task holds " << e.held << ", acquires " << e.acquired
       << "\n    at: ";
    for (std::size_t i = 0; i < e.chain.size(); ++i) {
      if (i != 0) os << " > ";
      os << e.chain[i];
    }
    os << "\n    locks held: ";
    append_lock_list(os, e.gates);
  }
  return os.str();
}

const char* mode_name(Mode m) noexcept {
  return m == Mode::kFastTrack ? "fasttrack" : "spbags";
}

bool parse_mode(const char* s, Mode& out) noexcept {
  if (s == nullptr) return false;
  std::string key;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == '-' || *p == '_') continue;  // "sp-bags" == "spbags"
    key += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (key == "spbags" || key == "serial") {
    out = Mode::kSpBags;
    return true;
  }
  if (key == "fasttrack" || key == "ft" || key == "parallel") {
    out = Mode::kFastTrack;
    return true;
  }
  return false;
}

std::vector<Mode> modes_from_env() {
  const char* env = std::getenv("DWS_RACE_MODE");
  if (env != nullptr && *env != '\0') {
    Mode m{};
    if (parse_mode(env, m)) return {m};
    if (std::string(env) != "both") {
      std::cerr << "DWS_RACE_MODE=" << env
                << " not recognized (want spbags|fasttrack|both); "
                   "running both modes\n";
    }
  }
  return {Mode::kSpBags, Mode::kFastTrack};
}

}  // namespace dws::race
