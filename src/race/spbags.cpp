#include "race/spbags.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "runtime/task.hpp"

namespace dws::race {

namespace {

constexpr unsigned kGranuleShift = 3;  // 8-byte shadow granules

}  // namespace

const char* access_name(Access a) noexcept {
  return a == Access::kWrite ? "write" : "read";
}

std::string RaceReport::to_string() const {
  std::ostringstream os;
  os << "determinacy race on address 0x" << std::hex << addr << std::dec
     << ": prior " << access_name(prior) << " is logically parallel with "
     << access_name(current) << "\n  prior access:   ";
  for (std::size_t i = 0; i < prior_chain.size(); ++i) {
    if (i != 0) os << " > ";
    os << prior_chain[i];
  }
  os << "\n  current access: ";
  for (std::size_t i = 0; i < current_chain.size(); ++i) {
    if (i != 0) os << " > ";
    os << current_chain[i];
  }
  return os.str();
}

SpBags::SpBags() {
  // Element 0: the root task (the thread driving the replay), in its own
  // S-bag. Everything it did before any spawn is a serial predecessor of
  // all tasks.
  cur_task_ = new_elem(-1, "root", /*is_finish=*/false, /*is_p=*/false);
}

std::int32_t SpBags::new_elem(std::int32_t parent, std::string label,
                              bool is_finish, bool is_p) {
  const auto id = static_cast<std::int32_t>(elems_.size());
  elems_.push_back(Elem{parent, std::move(label), is_finish});
  uf_parent_.push_back(id);
  uf_rank_.push_back(0);
  is_p_.push_back(is_p ? 1 : 0);
  return id;
}

std::int32_t SpBags::find(std::int32_t x) noexcept {
  std::int32_t root = x;
  while (uf_parent_[root] != root) root = uf_parent_[root];
  while (uf_parent_[x] != root) {  // path compression
    const std::int32_t next = uf_parent_[x];
    uf_parent_[x] = root;
    x = next;
  }
  return root;
}

void SpBags::merge(std::int32_t a, std::int32_t b,
                   bool result_is_p) noexcept {
  std::int32_t ra = find(a);
  std::int32_t rb = find(b);
  if (ra != rb) {
    if (uf_rank_[ra] < uf_rank_[rb]) std::swap(ra, rb);
    uf_parent_[rb] = ra;
    if (uf_rank_[ra] == uf_rank_[rb]) ++uf_rank_[ra];
  }
  is_p_[ra] = result_is_p ? 1 : 0;
}

bool SpBags::in_p_bag(std::int32_t task) noexcept {
  return is_p_[find(task)] != 0;
}

void SpBags::on_spawn(rt::Scheduler& /*sched*/, rt::TaskGroup& group,
                      rt::TaskBase* task) {
  // Label: global spawn ordinal plus the innermost active region, so a
  // provenance chain reads "root > spawn#2 'Heat' > spawn#7 'Heat'".
  std::string label = "spawn#" + std::to_string(next_ordinal_++);
  if (!regions_.empty()) {
    label += " '";
    label += regions_.back();
    label += "'";
  }

  const std::int32_t parent = cur_task_;
  const std::int32_t child =
      new_elem(parent, std::move(label), /*is_finish=*/false, /*is_p=*/false);

  std::int32_t fin;
  if (auto it = live_finishes_.find(&group); it != live_finishes_.end()) {
    fin = it->second;
  } else {
    fin = new_elem(parent, std::string(), /*is_finish=*/true, /*is_p=*/true);
    live_finishes_.emplace(&group, fin);
  }

  // Serial elision: the child runs here, now, to completion (including
  // everything it transitively spawns — on_spawn re-enters for those).
  cur_task_ = child;
  task->run_and_destroy();  // completes the group; captures exceptions
  cur_task_ = parent;

  // The child (with every serial descendant its bag accumulated) is
  // logically parallel with all work until the group's wait.
  merge(fin, child, /*result_is_p=*/true);
}

void SpBags::on_wait(rt::Scheduler& /*sched*/, rt::TaskGroup& group) {
  const auto it = live_finishes_.find(&group);
  if (it == live_finishes_.end()) return;  // nothing was spawned into it
  // End-finish: everything the group joined is now a serial predecessor
  // of the waiting task. Drop the address mapping — TaskGroups are
  // routinely stack-allocated, so a later group at the same address must
  // get a fresh finish anchor.
  merge(cur_task_, it->second, /*result_is_p=*/false);
  live_finishes_.erase(it);
}

void SpBags::record(std::uintptr_t addr, std::int32_t prior_task,
                    Access prior, Access current) {
  ++races_found_;
  const auto key = std::make_tuple(
      prior_task, cur_task_,
      static_cast<std::uint8_t>((static_cast<unsigned>(prior) << 1) |
                                static_cast<unsigned>(current)));
  if (races_.size() >= kMaxReports || !reported_.insert(key).second) return;
  RaceReport r;
  r.addr = addr;
  r.prior = prior;
  r.current = current;
  r.prior_chain = chain_of(prior_task);
  r.current_chain = chain_of(cur_task_);
  races_.push_back(std::move(r));
}

std::vector<std::string> SpBags::chain_of(std::int32_t task) const {
  std::vector<std::string> chain;
  for (std::int32_t t = task; t >= 0; t = elems_[t].parent_task) {
    chain.push_back(elems_[t].label);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

void SpBags::check_granule(std::uintptr_t granule, bool is_write) {
  ++granules_checked_;
  Shadow& sh = shadow_[granule];
  const std::uintptr_t byte_addr = granule << kGranuleShift;
  if (is_write) {
    if (sh.writer >= 0 && in_p_bag(sh.writer)) {
      record(byte_addr, sh.writer, Access::kWrite, Access::kWrite);
    }
    if (sh.reader >= 0 && in_p_bag(sh.reader)) {
      record(byte_addr, sh.reader, Access::kRead, Access::kWrite);
    }
    sh.writer = cur_task_;
  } else {
    if (sh.writer >= 0 && in_p_bag(sh.writer)) {
      record(byte_addr, sh.writer, Access::kWrite, Access::kRead);
    }
    // Keep the "deepest" reader: replace only a serial one. A parallel
    // prior reader is stronger evidence against any future writer.
    if (sh.reader < 0 || !in_p_bag(sh.reader)) sh.reader = cur_task_;
  }
}

void SpBags::on_access(const void* addr, std::size_t size, std::size_t count,
                       std::ptrdiff_t stride_bytes, bool is_write) {
  if (size == 0) return;
  auto base = reinterpret_cast<std::uintptr_t>(addr);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uintptr_t lo = base >> kGranuleShift;
    const std::uintptr_t hi = (base + size - 1) >> kGranuleShift;
    for (std::uintptr_t g = lo; g <= hi; ++g) check_granule(g, is_write);
    base += static_cast<std::uintptr_t>(stride_bytes);
  }
}

void SpBags::on_region_enter(const char* name) { regions_.push_back(name); }

void SpBags::on_region_exit() {
  if (!regions_.empty()) regions_.pop_back();
}

Replay::Replay(rt::Scheduler& sched)
    : sched_(sched), det_(std::make_unique<SpBags>()) {
  prev_sink_ = detail::tl_sink();
  detail::tl_sink() = det_.get();
  sched_.set_exec_hook(det_.get());
  attached_ = true;
}

const std::vector<RaceReport>& Replay::finish() {
  if (attached_) {
    sched_.set_exec_hook(nullptr);
    detail::tl_sink() = prev_sink_;
    attached_ = false;
  }
  return det_->races();
}

Replay::~Replay() { finish(); }

}  // namespace dws::race
