#include "race/spbags.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <utility>

#include "race/fasttrack.hpp"
#include "runtime/task.hpp"

namespace dws::race {

namespace {

constexpr unsigned kGranuleShift = 3;  // 8-byte shadow granules

}  // namespace

SpBags::SpBags(bool check_deadlocks) {
  // Element 0: the root task (the thread driving the replay), in its own
  // S-bag. Everything it did before any spawn is a serial predecessor of
  // all tasks.
  cur_task_ = new_elem(-1, "root", /*is_finish=*/false, /*is_p=*/false);
  if (check_deadlocks) lockgraph_ = std::make_unique<LockGraph>();
}

std::int32_t SpBags::new_elem(std::int32_t parent, std::string label,
                              bool is_finish, bool is_p) {
  const auto id = static_cast<std::int32_t>(elems_.size());
  elems_.push_back(Elem{parent, std::move(label), is_finish});
  uf_parent_.push_back(id);
  uf_rank_.push_back(0);
  is_p_.push_back(is_p ? 1 : 0);
  return id;
}

std::int32_t SpBags::find(std::int32_t x) noexcept {
  std::int32_t root = x;
  while (uf_parent_[root] != root) root = uf_parent_[root];
  while (uf_parent_[x] != root) {  // path compression
    const std::int32_t next = uf_parent_[x];
    uf_parent_[x] = root;
    x = next;
  }
  return root;
}

void SpBags::merge(std::int32_t a, std::int32_t b,
                   bool result_is_p) noexcept {
  std::int32_t ra = find(a);
  std::int32_t rb = find(b);
  if (ra != rb) {
    if (uf_rank_[ra] < uf_rank_[rb]) std::swap(ra, rb);
    uf_parent_[rb] = ra;
    if (uf_rank_[ra] == uf_rank_[rb]) ++uf_rank_[ra];
  }
  is_p_[ra] = result_is_p ? 1 : 0;
}

bool SpBags::in_p_bag(std::int32_t task) noexcept {
  return is_p_[find(task)] != 0;
}

void SpBags::on_spawn(rt::Scheduler& /*sched*/, rt::TaskGroup& group,
                      rt::TaskBase* task) {
  // Label: global spawn ordinal plus the innermost active region, so a
  // provenance chain reads "root > spawn#2 'Heat' > spawn#7 'Heat'".
  std::string label = "spawn#" + std::to_string(next_ordinal_++);
  if (!regions_.empty()) {
    label += " '";
    label += regions_.back();
    label += "'";
  }

  const std::int32_t parent = cur_task_;
  const std::int32_t child =
      new_elem(parent, std::move(label), /*is_finish=*/false, /*is_p=*/false);

  std::int32_t fin;
  if (auto it = live_finishes_.find(&group); it != live_finishes_.end()) {
    fin = it->second;
  } else {
    fin = new_elem(parent, std::string(), /*is_finish=*/true, /*is_p=*/true);
    live_finishes_.emplace(&group, fin);
  }

  // Serial elision: the child runs here, now, to completion (including
  // everything it transitively spawns — on_spawn re-enters for those).
  // The child starts with an empty lockset: in a parallel schedule it
  // runs on a worker that does not own the spawner's mutexes. Restoring
  // the saved frame afterwards also discards any acquire the child
  // failed to release, so unbalanced annotations cannot corrupt the
  // parent's lock state.
  std::vector<std::int32_t> saved_held;
  saved_held.swap(held_);
  const std::int32_t saved_lockset = cur_lockset_;
  cur_lockset_ = 0;
  cur_task_ = child;
  task->run_and_destroy();  // completes the group; captures exceptions
  cur_task_ = parent;
  held_ = std::move(saved_held);
  cur_lockset_ = saved_lockset;

  // The child (with every serial descendant its bag accumulated) is
  // logically parallel with all work until the group's wait.
  merge(fin, child, /*result_is_p=*/true);
}

void SpBags::on_wait(rt::Scheduler& /*sched*/, rt::TaskGroup& group) {
  const auto it = live_finishes_.find(&group);
  if (it == live_finishes_.end()) return;  // nothing was spawned into it
  // End-finish: everything the group joined is now a serial predecessor
  // of the waiting task. Drop the address mapping — TaskGroups are
  // routinely stack-allocated, so a later group at the same address must
  // get a fresh finish anchor.
  merge(cur_task_, it->second, /*result_is_p=*/false);
  live_finishes_.erase(it);
}

void SpBags::record(std::uintptr_t addr, const Locker& prior,
                    Access prior_kind, Access current_kind) {
  ++races_found_;
  const auto key = std::make_tuple(
      prior.task, cur_task_,
      static_cast<std::uint8_t>((static_cast<unsigned>(prior_kind) << 1) |
                                static_cast<unsigned>(current_kind)));
  if (races_.size() >= kMaxReports || !reported_.insert(key).second) return;
  RaceReport r;
  r.addr = addr;
  r.prior = prior_kind;
  r.current = current_kind;
  r.prior_chain = chain_of(prior.task);
  r.current_chain = chain_of(cur_task_);
  r.prior_locks = lockset_names(prior.lockset);
  r.current_locks = lockset_names(cur_lockset_);
  races_.push_back(std::move(r));
}

std::vector<std::string> SpBags::chain_of(std::int32_t task) const {
  std::vector<std::string> chain;
  for (std::int32_t t = task; t >= 0; t = elems_[t].parent_task) {
    chain.push_back(elems_[t].label);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

void SpBags::check_granule(std::uintptr_t granule, bool is_write) {
  ++granules_checked_;
  Shadow& sh = shadow_[granule];
  const std::uintptr_t byte_addr = granule << kGranuleShift;
  const std::int32_t H = cur_lockset_;
  // ALL-SETS ACCESS rule: a prior locker races with this access iff its
  // task is logically parallel AND no lock is common to both locksets.
  if (is_write) {
    for (const Locker& w : sh.writers) {
      if (in_p_bag(w.task) && locksets_disjoint(w.lockset, H)) {
        record(byte_addr, w, Access::kWrite, Access::kWrite);
      }
    }
    for (const Locker& r : sh.readers) {
      if (in_p_bag(r.task) && locksets_disjoint(r.lockset, H)) {
        record(byte_addr, r, Access::kRead, Access::kWrite);
      }
    }
    update_lockers(sh.writers, H);
  } else {
    for (const Locker& w : sh.writers) {
      if (in_p_bag(w.task) && locksets_disjoint(w.lockset, H)) {
        record(byte_addr, w, Access::kWrite, Access::kRead);
      }
    }
    update_lockers(sh.readers, H);
  }
}

void SpBags::update_lockers(std::vector<Locker>& lockers, std::int32_t H) {
  // ALL-SETS pruning. Soundness rests on pseudotransitivity of ∥ in
  // serial depth-first order (e1 ∥ e2, e2 ∥ e3, e1 before e2 before e3
  // serially ⟹ e1 ∥ e3) and transitivity of ⪯:
  //  - a serial predecessor e' with H' ⊇ H is subsumed by (cur, H): any
  //    later access parallel with e' is parallel with cur too, and
  //    disjoint from H' implies disjoint from H — drop it;
  //  - if some parallel e' holds H' ⊆ H, then (cur, H) is redundant by
  //    the mirrored argument — skip the insert.
  // In the lock-free case (every lockset ∅, so ⊆ and ⊇ always hold)
  // this keeps exactly one locker per list.
  bool redundant = false;
  std::size_t out = 0;
  for (std::size_t i = 0; i < lockers.size(); ++i) {
    const Locker& l = lockers[i];
    const bool parallel = in_p_bag(l.task);
    if (!parallel && lockset_subset(H, l.lockset)) {
      ++lockers_pruned_;
      continue;
    }
    if (parallel && lockset_subset(l.lockset, H)) redundant = true;
    lockers[out++] = l;
  }
  lockers.resize(out);
  if (!redundant) lockers.push_back(Locker{cur_task_, H});
}

void SpBags::on_access(const void* addr, std::size_t size, std::size_t count,
                       std::ptrdiff_t stride_bytes, bool is_write) {
  if (size == 0) return;
  auto base = reinterpret_cast<std::uintptr_t>(addr);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uintptr_t lo = base >> kGranuleShift;
    const std::uintptr_t hi = (base + size - 1) >> kGranuleShift;
    for (std::uintptr_t g = lo; g <= hi; ++g) check_granule(g, is_write);
    base += static_cast<std::uintptr_t>(stride_bytes);
  }
}

void SpBags::on_region_enter(const char* name) { regions_.push_back(name); }

void SpBags::on_region_exit() {
  if (!regions_.empty()) regions_.pop_back();
}

std::int32_t SpBags::lock_id(const void* lock, const char* name) {
  auto [it, inserted] =
      lock_of_addr_.emplace(lock, static_cast<std::int32_t>(lock_names_.size()));
  if (inserted) {
    std::ostringstream os;
    if (name != nullptr) {
      os << name;
    } else {
      // Anonymous locks are named by first-seen order within the
      // session, never by address: heap reuse across sessions would
      // otherwise alias two distinct locks under one report name.
      os << "lock#" << it->second;
    }
    lock_names_.push_back(os.str());
  } else if (name != nullptr &&
             lock_names_[static_cast<std::size_t>(it->second)].rfind(
                 "lock#", 0) == 0) {
    // A later annotation supplied the name an earlier anonymous
    // acquisition lacked; adopt it for all future reports.
    lock_names_[static_cast<std::size_t>(it->second)] = name;
  }
  return it->second;
}

std::int32_t SpBags::intern_lockset(std::vector<std::int32_t> sorted_unique) {
  if (sorted_unique.empty()) return 0;
  const auto next = static_cast<std::int32_t>(locksets_.size());
  auto [it, inserted] = lockset_of_key_.emplace(std::move(sorted_unique), next);
  if (inserted) locksets_.push_back(it->first);
  return it->second;
}

bool SpBags::locksets_disjoint(std::int32_t a, std::int32_t b) const noexcept {
  if (a == 0 || b == 0) return true;
  if (a == b) return false;  // identical non-empty sets share every lock
  const auto& sa = locksets_[static_cast<std::size_t>(a)];
  const auto& sb = locksets_[static_cast<std::size_t>(b)];
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] == sb[j]) return false;
    if (sa[i] < sb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return true;
}

bool SpBags::lockset_subset(std::int32_t a, std::int32_t b) const noexcept {
  if (a == 0 || a == b) return true;
  if (b == 0) return false;
  const auto& sa = locksets_[static_cast<std::size_t>(a)];
  const auto& sb = locksets_[static_cast<std::size_t>(b)];
  if (sa.size() > sb.size()) return false;
  std::size_t j = 0;
  for (const std::int32_t x : sa) {
    while (j < sb.size() && sb[j] < x) ++j;
    if (j == sb.size() || sb[j] != x) return false;
    ++j;
  }
  return true;
}

std::vector<std::string> SpBags::lockset_names(std::int32_t ls) const {
  std::vector<std::string> names;
  if (ls == 0) return names;
  for (const std::int32_t id : locksets_[static_cast<std::size_t>(ls)]) {
    names.push_back(lock_names_[static_cast<std::size_t>(id)]);
  }
  return names;
}

void SpBags::recompute_cur_lockset() {
  std::vector<std::int32_t> key(held_);
  key.erase(std::unique(key.begin(), key.end()), key.end());
  cur_lockset_ = intern_lockset(std::move(key));
}

void SpBags::on_lock_acquire(const void* lock, const char* name) {
  const std::int32_t id = lock_id(lock, name);
  // Deadlock edge: acquiring `id` while already holding others orders
  // them before it. Recorded against the PRE-acquire held set; a
  // recursive re-acquisition (id already held) creates no edge. The
  // acquiring task's parallelism with each earlier recorded event is the
  // P-bag query, taken now — at this point of the serial replay it is
  // exactly the final series/parallel relation between the two points.
  if (lockgraph_ != nullptr && !held_.empty() &&
      !std::binary_search(held_.begin(), held_.end(), id)) {
    std::vector<std::int32_t> gates(held_);
    gates.erase(std::unique(gates.begin(), gates.end()), gates.end());
    lockgraph_->record_acquire(
        id, gates, chain_of(cur_task_), static_cast<std::uint64_t>(cur_task_),
        [this](std::uint64_t tag) {
          return in_p_bag(static_cast<std::int32_t>(tag));
        });
  }
  held_.insert(std::upper_bound(held_.begin(), held_.end(), id), id);
  recompute_cur_lockset();
}

void SpBags::on_lock_release(const void* lock) {
  const auto it = lock_of_addr_.find(lock);
  if (it == lock_of_addr_.end()) return;  // release of a never-acquired lock
  const auto pos = std::lower_bound(held_.begin(), held_.end(), it->second);
  if (pos == held_.end() || *pos != it->second) return;  // not held
  held_.erase(pos);  // one multiset instance: recursive holds stay held
  recompute_cur_lockset();
}

DeadlockAnalysis SpBags::analyze_deadlocks() const {
  if (lockgraph_ == nullptr) return {};
  return lockgraph_->analyze([this](std::int32_t id) {
    return lock_names_[static_cast<std::size_t>(id)];
  });
}

Replay::Replay(rt::Scheduler& sched, Mode mode, bool check_deadlocks)
    : sched_(sched), mode_(mode) {
  prev_sink_ = detail::tl_sink();
  if (mode_ == Mode::kSpBags) {
    det_ = std::make_unique<SpBags>(check_deadlocks);
    detail::tl_sink() = det_.get();
    sched_.set_exec_hook(det_.get());
  } else {
    ft_ = std::make_unique<FastTrack>(check_deadlocks);
    // The constructing thread gets a sink immediately (annotations made
    // outside any task — e.g. serial reference phases — are attributed
    // to its root frame); worker threads install theirs per task body.
    detail::tl_sink() = ft_->sink_for_current_thread();
    assert(detail::parallel_hook().load(std::memory_order_acquire) ==
               nullptr &&
           "one FastTrack session at a time (the hook is process-wide)");
    detail::parallel_hook().store(ft_.get(), std::memory_order_release);
  }
  attached_ = true;
}

const std::vector<RaceReport>& Replay::finish() {
  if (attached_) {
    if (mode_ == Mode::kSpBags) {
      sched_.set_exec_hook(nullptr);
    } else {
      detail::parallel_hook().store(nullptr, std::memory_order_release);
    }
    detail::tl_sink() = prev_sink_;
    attached_ = false;
  }
  return mode_ == Mode::kSpBags ? det_->races() : ft_->races();
}

const DeadlockAnalysis& Replay::deadlocks() {
  finish();
  if (!deadlocks_done_) {
    deadlocks_ = mode_ == Mode::kSpBags ? det_->analyze_deadlocks()
                                        : ft_->analyze_deadlocks();
    deadlocks_done_ = true;
  }
  return deadlocks_;
}

Replay::~Replay() { finish(); }

std::uint64_t Replay::races_found() const noexcept {
  return mode_ == Mode::kSpBags ? det_->races_found() : ft_->races_found();
}

std::uint64_t Replay::tasks_executed() const noexcept {
  return mode_ == Mode::kSpBags ? det_->tasks_executed()
                                : ft_->tasks_executed();
}

std::uint64_t Replay::granules_checked() const noexcept {
  return mode_ == Mode::kSpBags ? det_->granules_checked()
                                : ft_->granules_checked();
}

std::size_t Replay::locks_seen() const {
  return mode_ == Mode::kSpBags ? det_->locks_seen() : ft_->locks_seen();
}

}  // namespace dws::race
