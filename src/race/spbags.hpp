// SP-bags determinacy-race detection for the task layer.
//
// Feng & Leiserson's Nondeterminator algorithm, in the async-finish
// adaptation (ESP-bags) that matches this runtime's TaskGroup model:
// spawn(group, f) is an async into the finish scope `group`, wait(group)
// is the end-finish. The program is executed once, serially, in
// depth-first (Cilk serial-elision) order; a disjoint-set forest over
// "bags" of tasks maintains, at every point of that execution, whether a
// previously-executed task is a *serial* predecessor (S-bag) of the
// currently executing task or *logically parallel* (P-bag) with it:
//
//   - each task starts as the singleton S-bag of itself;
//   - when a task spawned into finish F completes, its bag is merged
//     into F's P-bag (it is parallel with everything up to the wait);
//   - at wait(F), F's P-bag merges into the S-bag of the waiting task
//     (everything F joined is now a serial predecessor).
//
// Locks are modeled with the ALL-SETS extension (Cheng, Feng,
// Leiserson, Randall & Stark, "Detecting data races in Cilk programs
// that use locks" — the Nondeterminator-2 lineage): the detector keeps
// the multiset of locks the replay currently holds (fed by
// dws::race::lock_acquire/lock_release, usually via race::scoped_lock),
// and shadow memory over the *annotated* addresses keeps, per 8-byte
// granule, a list of (accessor task, lockset) "lockers" for writers and
// readers. An access races with a prior one iff the two tasks are
// logically parallel (P-bag) AND their locksets are disjoint — a common
// lock serializes the pair in every schedule. Locker lists stay tiny
// through ALL-SETS's pruning rule: a new locker (e, H) evicts entries
// (e', H') with e' a serial predecessor and H' ⊇ H, and is itself
// redundant (not inserted) when some parallel (e', H') has H' ⊆ H.
// With no locks in play every lockset is ∅ and the lists degenerate to
// the classic one-writer/one-reader shadow. A conflict is a determinacy
// race: some parallel schedule of the same DAG orders the two accesses
// the other way. Reports carry spawn-tree provenance — the chain of
// spawn sites (with active race::region labels) from the root to each
// conflicting task — plus lock provenance: the locks each side held,
// and which lock would have serialized the pair.
//
// Known limitations (by design; see docs/CHECKING.md): only annotated
// addresses are checked; a common lock certifies mutual exclusion (no
// data race), not determinacy — lock-protected combines must still be
// order-insensitive; and one serial execution checks one DAG —
// input-dependent spawn trees need one replay per input (the race suite
// sweeps seeded inputs for those).
#pragma once

#ifdef DWS_RACE_DISABLED
#error "src/race requires a build without DWS_RACE_DISABLED (-DDWS_RACE=ON)"
#endif

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "race/lockgraph.hpp"
#include "race/report.hpp"
#include "runtime/race_hook.hpp"
#include "runtime/scheduler.hpp"

namespace dws::race {

class FastTrack;

/// The detector: installed as both the scheduler's ExecHook (serial
/// depth-first replay + SP-relation maintenance) and the thread's
/// MemorySink (annotated-access checking). Use via Replay below.
class SpBags final : public ExecHook, public MemorySink {
 public:
  /// `check_deadlocks` additionally feeds every nested lock acquisition
  /// into a lock-order graph (race/lockgraph.hpp) for post-session
  /// deadlock analysis; parallelism between acquisition points is the
  /// P-bag query, evaluated at record time.
  explicit SpBags(bool check_deadlocks = true);

  // ExecHook
  void on_spawn(rt::Scheduler& sched, rt::TaskGroup& group,
                rt::TaskBase* task) override;
  void on_wait(rt::Scheduler& sched, rt::TaskGroup& group) override;

  // MemorySink
  void on_access(const void* addr, std::size_t size, std::size_t count,
                 std::ptrdiff_t stride_bytes, bool is_write) override;
  void on_region_enter(const char* name) override;
  void on_region_exit() override;
  void on_lock_acquire(const void* lock, const char* name) override;
  void on_lock_release(const void* lock) override;

  [[nodiscard]] const std::vector<RaceReport>& races() const noexcept {
    return races_;
  }
  /// Total conflicting pairs observed, including those deduplicated or
  /// dropped past the report cap.
  [[nodiscard]] std::uint64_t races_found() const noexcept {
    return races_found_;
  }
  [[nodiscard]] std::uint64_t tasks_executed() const noexcept {
    return next_ordinal_;
  }
  [[nodiscard]] std::uint64_t granules_checked() const noexcept {
    return granules_checked_;
  }
  /// Distinct locks observed through lock_acquire.
  [[nodiscard]] std::size_t locks_seen() const noexcept {
    return lock_names_.size() - 1;  // id 0 is reserved
  }
  /// Locker entries evicted by the ALL-SETS pruning rule (serial
  /// predecessor with a superset lockset subsumed by a new locker).
  [[nodiscard]] std::uint64_t lockers_pruned() const noexcept {
    return lockers_pruned_;
  }

  /// Spawn-site chain (root first) of a task id from a report.
  [[nodiscard]] std::vector<std::string> chain_of(std::int32_t task) const;

  /// Run cycle detection + certification over the lock-order graph.
  /// Returns a disabled (empty) analysis when constructed with
  /// check_deadlocks = false.
  [[nodiscard]] DeadlockAnalysis analyze_deadlocks() const;
  /// The lock-order graph, or nullptr when deadlock checking is off.
  [[nodiscard]] const LockGraph* lock_graph() const noexcept {
    return lockgraph_.get();
  }

  /// At most this many distinct reports are materialized.
  static constexpr std::size_t kMaxReports = 64;

 private:
  struct Elem {
    std::int32_t parent_task;  ///< -1 for the root
    std::string label;         ///< empty for finish anchors
    bool is_finish;
  };
  /// One ALL-SETS "locker": a past accessor and the (interned) set of
  /// locks it held. Pruning keeps these lists near-minimal — exactly one
  /// entry per list in the lock-free case.
  struct Locker {
    std::int32_t task;
    std::int32_t lockset;
  };
  struct Shadow {
    std::vector<Locker> writers;
    std::vector<Locker> readers;
  };

  std::int32_t new_elem(std::int32_t parent, std::string label,
                        bool is_finish, bool is_p);
  [[nodiscard]] std::int32_t find(std::int32_t x) noexcept;
  /// Union the sets of `a` and `b`; the merged root's kind becomes
  /// `result_is_p`.
  void merge(std::int32_t a, std::int32_t b, bool result_is_p) noexcept;
  [[nodiscard]] bool in_p_bag(std::int32_t task) noexcept;
  void record(std::uintptr_t addr, const Locker& prior, Access prior_kind,
              Access current_kind);
  void check_granule(std::uintptr_t granule, bool is_write);
  /// ALL-SETS insertion with pruning: fold (cur_task_, H) into `lockers`.
  void update_lockers(std::vector<Locker>& lockers, std::int32_t H);

  // Lockset machinery. Locks are interned to small ids; locksets are
  // canonical sorted-unique id vectors interned to lockset ids (0 = ∅),
  // so per-access set operations compare ids and walk short vectors.
  std::int32_t lock_id(const void* lock, const char* name);
  std::int32_t intern_lockset(std::vector<std::int32_t> sorted_unique);
  [[nodiscard]] bool locksets_disjoint(std::int32_t a,
                                       std::int32_t b) const noexcept;
  /// a ⊆ b over interned lockset ids.
  [[nodiscard]] bool lockset_subset(std::int32_t a,
                                    std::int32_t b) const noexcept;
  [[nodiscard]] std::vector<std::string> lockset_names(std::int32_t ls) const;
  void recompute_cur_lockset();

  // Disjoint-set forest; element index space is shared by tasks and
  // finish anchors.
  std::vector<std::int32_t> uf_parent_;
  std::vector<std::int32_t> uf_rank_;
  std::vector<std::uint8_t> is_p_;  // meaningful at roots only
  std::vector<Elem> elems_;

  std::unordered_map<std::uintptr_t, Shadow> shadow_;  // granule -> state
  std::unordered_map<const rt::TaskGroup*, std::int32_t> live_finishes_;

  std::int32_t cur_task_ = 0;
  std::uint64_t next_ordinal_ = 0;  // spawn counter for labels
  std::vector<const char*> regions_;

  // Lock state of the replay. held_ is the sorted multiset of lock ids
  // the current task holds (multiset: recursive/hand-over-hand locking
  // stays representable); cur_lockset_ caches its interned dedup. A
  // spawned child starts with ∅ — in a parallel schedule it would run on
  // a worker that does not own its parent's mutexes (see on_spawn).
  std::unordered_map<const void*, std::int32_t> lock_of_addr_;
  std::vector<std::string> lock_names_{std::string()};  // [0] reserved
  std::map<std::vector<std::int32_t>, std::int32_t> lockset_of_key_;
  std::vector<std::vector<std::int32_t>> locksets_{{}};  // [0] = ∅
  std::vector<std::int32_t> held_;
  std::int32_t cur_lockset_ = 0;

  /// Lock-order graph for deadlock analysis (null when off). Fed from
  /// on_lock_acquire with the pre-acquire held set.
  std::unique_ptr<LockGraph> lockgraph_;

  std::vector<RaceReport> races_;
  std::set<std::tuple<std::int32_t, std::int32_t, std::uint8_t>> reported_;
  std::uint64_t races_found_ = 0;
  std::uint64_t granules_checked_ = 0;
  std::uint64_t lockers_pruned_ = 0;
};

/// RAII race-checking session over `sched`, in one of two modes:
///
///  - Mode::kSpBags (default): serial depth-first replay. Everything
///    submitted from the constructing thread executes inline in
///    serial-elision order; one run certifies the whole task DAG.
///  - Mode::kFastTrack: the program runs on the real parallel workers;
///    vector clocks over the runtime's spawn/steal/wait edges check the
///    same annotation stream against the one observed schedule
///    (race::FastTrack; non-certifying where locks order accesses).
///
///   race::Replay replay(sched, race::Mode::kFastTrack);
///   app.run(sched);
///   for (auto& r : replay.finish()) std::cerr << r.to_string() << "\n";
///
/// The scheduler must be quiescent when the session starts and when it
/// ends. Under kSpBags, submit only from the constructing thread while
/// the session is active; under kFastTrack any thread may submit, but
/// only one FastTrack session may exist process-wide at a time (the
/// hook is global — it observes every scheduler in the process).
class Replay {
 public:
  /// `check_deadlocks` (on by default) records every nested lock
  /// acquisition into a lock-order graph; deadlocks() then reports
  /// certified acquisition-order cycles (see race/lockgraph.hpp).
  explicit Replay(rt::Scheduler& sched, Mode mode = Mode::kSpBags,
                  bool check_deadlocks = true);
  Replay(const Replay&) = delete;
  Replay& operator=(const Replay&) = delete;
  ~Replay();

  /// Detach from the scheduler and return the reports. Idempotent; the
  /// detector (and the returned reference) stays valid until the Replay
  /// object is destroyed.
  const std::vector<RaceReport>& finish();

  /// Deadlock verdict for the session: detaches (as finish()) and runs
  /// the lock-order-graph analysis on first call; cached after that.
  /// Disabled (empty, enabled == false) when check_deadlocks was off.
  const DeadlockAnalysis& deadlocks();

  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  /// The SP-bags detector. Valid only in Mode::kSpBags.
  [[nodiscard]] const SpBags& detector() const noexcept { return *det_; }
  /// The FastTrack detector. Valid only in Mode::kFastTrack.
  [[nodiscard]] const FastTrack& fasttrack() const noexcept { return *ft_; }

  // Mode-independent counters, for tests parametrized over Mode.
  [[nodiscard]] std::uint64_t races_found() const noexcept;
  [[nodiscard]] std::uint64_t tasks_executed() const noexcept;
  [[nodiscard]] std::uint64_t granules_checked() const noexcept;
  /// Distinct locks observed through lock_acquire (vacuity guard for
  /// deadlock-certification tests: a clean verdict over zero locks
  /// proves nothing).
  [[nodiscard]] std::size_t locks_seen() const;

 private:
  rt::Scheduler& sched_;
  Mode mode_;
  std::unique_ptr<SpBags> det_;
  std::unique_ptr<FastTrack> ft_;
  MemorySink* prev_sink_ = nullptr;
  bool attached_ = false;
  DeadlockAnalysis deadlocks_;
  bool deadlocks_done_ = false;
};

}  // namespace dws::race
