// Lock-order-graph deadlock detection (the Goodlock family: Havelund's
// analysis from Java PathFinder, refined per Bensalem & Havelund,
// "Dynamic deadlock analysis of multi-threaded programs") over the
// annotation stream both race detectors already consume.
//
// Every dws::race::lock_acquire performed while the acquiring task
// already holds locks contributes edges to a directed graph over locks:
// acquiring L while holding {H1..Hk} records Hi → L for each held Hi,
// stamped with the acquiring task's spawn-chain provenance, the full
// gate-lock set held at the acquire, and an opaque task tag the owning
// detector can answer series/parallel queries about. After the session,
// analyze() runs Tarjan's SCC decomposition and enumerates the simple
// cycles inside each non-trivial component; a cycle is a *potential
// deadlock* — some schedule exists where every participant holds its
// edge's source lock and blocks on its target — only if an assignment of
// one recorded event per edge exists such that
//
//   (1) the acquiring execution points are pairwise logically parallel
//       (the series/parallel filter: an inversion between serially
//       ordered code, or within one task, can never block on itself —
//       the refinement plain lock-order graphs get wrong), and
//   (2) the events' gate sets are pairwise disjoint (the gate-lock
//       filter: a common outer lock serializes the inner inversion in
//       every schedule, so the cycle can never close).
//
// Cycles killed by exactly one of the two filters are counted
// (cycles_gate_suppressed / cycles_serial_suppressed) so tests can
// assert a seeded false positive was seen *and* suppressed, not merely
// missed.
//
// The graph is mode-agnostic: SpBags feeds it during serial replay
// (tags are task ids, parallelism is the P-bag query) and FastTrack
// feeds it from the live schedule (tags are (frame, clock) pairs,
// parallelism is the structural fork-join-only vector clock — NOT the
// full HB clock, which lock edges would collapse along the one observed
// schedule and hide the classic AB/BA inversion). Parallelism bits are
// evaluated eagerly at record time against all earlier events, because
// neither detector can answer historical queries once the session ends.
#pragma once

#ifdef DWS_RACE_DISABLED
#error "src/race requires a build without DWS_RACE_DISABLED (-DDWS_RACE=ON)"
#endif

#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "race/report.hpp"

namespace dws::race {

/// The graph. Thread-safe: FastTrack records from every worker (SpBags,
/// single-threaded, pays one uncontended mutex per *nested* acquire —
/// acquires with nothing held never reach the graph).
class LockGraph {
 public:
  /// Record one nested acquisition: `acquired` taken while `held` (the
  /// owning detector's interned lock ids, sorted + deduplicated,
  /// non-empty, not containing `acquired` — recursive re-acquisition
  /// creates no ordering edge) was owned. `chain` is the acquiring
  /// task's spawn-site provenance, `tag` an opaque task identity.
  /// `parallel_with_earlier(t)` must answer, at call time, whether the
  /// acquiring execution point is logically parallel with the earlier
  /// recorded event tagged `t`; it is invoked once per earlier event to
  /// fill this event's parallelism bits (events and bits are capped —
  /// see kMaxEvents — with drops counted, never silent).
  void record_acquire(
      std::int32_t acquired, const std::vector<std::int32_t>& held,
      std::vector<std::string> chain, std::uint64_t tag,
      const std::function<bool(std::uint64_t)>& parallel_with_earlier);

  /// Cycle detection + certification over everything recorded so far.
  /// `name_of` resolves the owning detector's lock ids for reports.
  [[nodiscard]] DeadlockAnalysis analyze(
      const std::function<std::string(std::int32_t)>& name_of) const;

  /// Distinct nested acquisitions recorded (post-dedup).
  [[nodiscard]] std::uint64_t events_recorded() const;
  /// Acquisitions dropped past kMaxEvents (0 in any healthy session).
  [[nodiscard]] std::uint64_t events_dropped() const;

  /// Caps. Events: distinct (acquired, held, task) triples — repeated
  /// acquisitions from loops dedup to one, so real sessions sit far
  /// below this. Cycle enumeration and per-cycle assignment search are
  /// bounded too: analysis stays cheap even on adversarial graphs.
  static constexpr std::size_t kMaxEvents = 4096;
  static constexpr std::size_t kMaxCycleLen = 8;
  static constexpr std::size_t kMaxCycles = 256;
  static constexpr std::size_t kMaxAssignmentSteps = 4096;
  static constexpr std::size_t kMaxReports = 16;

 private:
  struct Event {
    std::int32_t acquired = 0;
    std::vector<std::int32_t> held;  ///< sorted, deduplicated gate set
    std::vector<std::string> chain;
    std::uint64_t tag = 0;
    /// parallel[i]: this event is logically parallel with events_[i]
    /// (defined for i < this event's own index only).
    std::vector<bool> parallel;
  };

  [[nodiscard]] bool parallel(std::size_t a, std::size_t b) const;
  [[nodiscard]] bool gates_disjoint(std::size_t a, std::size_t b) const;

  mutable std::mutex m_;
  std::vector<Event> events_;
  std::set<std::tuple<std::int32_t, std::uint64_t, std::vector<std::int32_t>>>
      dedup_;
  std::uint64_t dropped_ = 0;
};

}  // namespace dws::race
