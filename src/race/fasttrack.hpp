// FastTrack-style vector-clock race detection riding the *live* parallel
// schedule (Flanagan & Freund's epoch/VC adaptive representation, adapted
// to the task layer).
//
// Where SP-bags replays the program serially and certifies the whole task
// DAG, FastTrack lets the program run on the real work-stealing workers
// and checks the same annotation stream against the happens-before
// relation of that execution — detection itself becomes a parallel
// workload. The runtime publishes its HB edges through
// race::ParallelHook (runtime/race_hook.hpp):
//
//   publish (spawn site)   the child task captures the spawning frame's
//                          vector clock in a per-task token before the
//                          deque push / inbox transfer; the spawner then
//                          advances its own epoch, so its post-spawn work
//                          is parallel with the child;
//   begin (pop or steal)   the executing thread opens a FRESH frame: a
//                          brand-new vector-clock index for the task,
//                          with the token's clock as its inherited
//                          history. Tasks — not OS threads — are the
//                          units of the clock, so two tasks that happen
//                          to land on one worker share no index and stay
//                          logically parallel: the relation checked is
//                          the program's series-parallel structure plus
//                          lock edges, not the accidents of one deque
//                          interleaving. Nested inline execution
//                          (help-first waiting) saves and restores the
//                          interrupted frame stack-fashion through the
//                          token;
//   end (completion)       the frame's clock joins the TaskGroup's join
//                          clock before complete_one can release a
//                          waiter;
//   wait done              the waiter joins the group's join clock;
//   lock acquire/release   release publishes the frame clock into the
//                          lock's clock and advances the holder's epoch;
//                          acquire joins the lock's clock — mutex-
//                          serialized accesses are ordered, as in
//                          ALL-SETS, but via the lock-edge order of the
//                          observed schedule.
//
// Per-frame indices make vector-clock prefix coverage EXACT: an index is
// one frame's serial execution, so "slot s up to clock c" can only mean
// that frame's first c epochs — there is no way for one task's fresh
// epoch to accidentally cover an unrelated task that reused the same
// worker (the classic unsoundness of thread-indexed clocks under task
// schedulers). The cost is that clock vectors grow with the number of
// frames spawned in the session and spawn/join edges are O(frames) —
// acceptable for certification runs, and access checks stay O(1) via
// FastTrack epochs.
//
// Shadow state per 8-byte granule is FastTrack's adaptive word: a single
// write epoch, plus either one read epoch (while reads stay ordered) or
// a read *frontier* — the pairwise-unordered prior reads — once
// concurrent readers appear. Dropping a read that is ordered before the
// incoming one is sound: any later writer unordered with the dropped
// read is also unordered with the one that subsumed it. The shadow table
// is sharded (per-shard mutex) so worker threads check annotations
// without a global lock; each frame's own clock needs no lock at all —
// the FastTrack property that makes the parallel mode cheap.
//
// Known limitation (the mode-selection trade, docs/CHECKING.md): one
// run checks one observed schedule. For lock-free programs the modeled
// relation is schedule-independent (spawn/join edges only), so verdicts
// match SP-bags; with locks, the observed lock-edge order can serialize
// pairs that another schedule would race — SP-bags/ALL-SETS remains the
// certifying default.
#pragma once

#ifdef DWS_RACE_DISABLED
#error "src/race requires a build without DWS_RACE_DISABLED (-DDWS_RACE=ON)"
#endif

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "race/lockgraph.hpp"
#include "race/report.hpp"
#include "runtime/race_hook.hpp"
#include "util/layout.hpp"

namespace dws::race {

class FastTrack final : public ParallelHook {
 public:
  /// `check_deadlocks` additionally feeds nested lock acquisitions into
  /// a lock-order graph (race/lockgraph.hpp). Parallelism between
  /// acquisition points uses a second, *structural* vector clock per
  /// frame that joins only the fork-join edges (publish/begin/end/wait)
  /// and never the lock edges: the full HB clock would order the two
  /// halves of an AB/BA inversion along whichever lock-edge sequence the
  /// observed schedule happened to produce and hide the cycle, while the
  /// structural relation is schedule-independent and matches SP-bags.
  explicit FastTrack(bool check_deadlocks = true);
  ~FastTrack() override;

  // ParallelHook (called by the runtime; see race_hook.hpp)
  void* on_task_published(rt::TaskGroup& group) override;
  void on_task_begin(void* token) override;
  void on_task_end(void* token, rt::TaskGroup* group) override;
  void on_wait_done(rt::TaskGroup& group) override;

  /// The calling thread's annotation sink (allocates the thread's slot on
  /// first use). Replay installs this on the session's root thread; task
  /// bodies get their executing thread's sink installed at begin.
  [[nodiscard]] MemorySink* sink_for_current_thread();

  [[nodiscard]] const std::vector<RaceReport>& races() const noexcept {
    return races_;
  }
  /// Total unordered conflicting pairs observed, including those
  /// deduplicated or dropped past the report cap.
  [[nodiscard]] std::uint64_t races_found() const noexcept {
    return races_found_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t tasks_executed() const noexcept {
    return tasks_executed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t granules_checked() const noexcept;
  /// Granules whose read state was promoted from a single epoch to a
  /// read frontier (FastTrack's slow representation).
  [[nodiscard]] std::uint64_t read_promotions() const noexcept;
  /// Thread slots allocated (workers that executed annotated work, plus
  /// the session root thread).
  [[nodiscard]] std::size_t threads_seen() const;
  /// Distinct locks observed through lock_acquire.
  [[nodiscard]] std::size_t locks_seen() const;

  /// Run cycle detection + certification over the lock-order graph.
  /// Returns a disabled (empty) analysis when constructed with
  /// check_deadlocks = false.
  [[nodiscard]] DeadlockAnalysis analyze_deadlocks() const;
  /// The lock-order graph, or nullptr when deadlock checking is off.
  [[nodiscard]] const LockGraph* lock_graph() const noexcept {
    return lockgraph_.get();
  }

  /// At most this many distinct reports are materialized.
  static constexpr std::size_t kMaxReports = 64;

 private:
  using Clock = std::uint32_t;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFU;
  static constexpr std::size_t kShards = 64;

  /// Growable vector clock; absent entries are 0.
  struct VC {
    std::vector<Clock> c;

    [[nodiscard]] Clock get(std::size_t i) const noexcept {
      return i < c.size() ? c[i] : 0;
    }
    void set(std::size_t i, Clock v) {
      if (i >= c.size()) c.resize(i + 1, 0);
      c[i] = v;
    }
    void join(const VC& o) {
      if (o.c.size() > c.size()) c.resize(o.c.size(), 0);
      for (std::size_t i = 0; i < o.c.size(); ++i) {
        if (o.c[i] > c[i]) c[i] = o.c[i];
      }
    }
  };

  /// One access: a (clock, slot) epoch plus interned provenance (spawn
  /// chain and held-lock names) for reports.
  struct Epoch {
    Clock clock = 0;
    std::uint32_t slot = kNoSlot;
    std::uint32_t prov = 0;
    std::uint32_t locks = 0;
  };

  struct ShadowWord {
    Epoch write;
    /// Last read while reads stay totally ordered...
    Epoch read;
    /// ...or the frontier of pairwise-unordered reads once concurrent
    /// readers appear (sparse: distinct slots, scanned linearly).
    std::unique_ptr<std::vector<Epoch>> read_frontier;
  };

  struct ThreadState;

  /// Per-thread MemorySink routing into the owning detector.
  class Sink final : public MemorySink {
   public:
    Sink(FastTrack* owner, ThreadState* ts) noexcept
        : owner_(owner), ts_(ts) {}
    void on_access(const void* addr, std::size_t size, std::size_t count,
                   std::ptrdiff_t stride_bytes, bool is_write) override;
    void on_region_enter(const char* name) override;
    void on_region_exit() override;
    void on_lock_acquire(const void* lock, const char* name) override;
    void on_lock_release(const void* lock) override;

   private:
    FastTrack* owner_;
    ThreadState* ts_;
  };

  /// One OS thread's live frame. Strictly thread-private after
  /// allocation (the FastTrack property: race checks read only the
  /// current frame's clock); `deque` storage keeps addresses stable as
  /// threads are added. `slot` is the CURRENT frame's vector-clock
  /// index — fresh per task, so it changes at task begin/end.
  /// One held lock: the annotation address plus the session-interned id
  /// and display name (ids feed the lock-order graph; names feed race
  /// reports).
  struct HeldLock {
    const void* addr = nullptr;
    std::int32_t id = 0;
    std::string name;
  };

  struct ThreadState {
    std::uint32_t slot = 0;
    VC vc;
    /// Structural (fork-join-only) clock for the deadlock analysis:
    /// maintained alongside `vc` across publish/begin/end/wait but NOT
    /// joined at lock edges, so "can these two acquisition points run in
    /// parallel?" is independent of the observed lock order. Only
    /// maintained while deadlock checking is on, and lazily populated:
    /// a frame's own entry is materialized at its first lock acquire
    /// (slots are per-frame, so an eager entry would cost an O(slot)
    /// resize per task), which keeps the analysis near-free for
    /// lock-free programs — entries exist only for locking frames and
    /// whatever inherits them across fork-join edges.
    VC sp_vc;
    std::vector<std::string> chain{std::string("root")};
    std::vector<const char*> regions;
    /// Held locks, acquisition-ordered (multiset: recursive and
    /// hand-over-hand locking stay representable).
    std::vector<HeldLock> held;
    std::uint32_t prov = 0;
    std::uint32_t locks = 0;
    std::unique_ptr<Sink> sink;
  };

  /// Per-task HB baton: the spawn-site clock and provenance going in,
  /// the interrupted frame (help-first nesting) saved across the body.
  struct Token {
    VC msg;
    VC msg_sp;  ///< structural clock at the spawn site (deadlock mode)
    std::vector<std::string> chain;
    std::vector<const char*> regions;

    std::uint32_t saved_slot = 0;
    VC saved_vc;
    VC saved_sp;
    std::vector<std::string> saved_chain;
    std::vector<const char*> saved_regions;
    std::vector<HeldLock> saved_held;
    std::uint32_t saved_prov = 0;
    std::uint32_t saved_locks = 0;
    MemorySink* prev_sink = nullptr;
  };

  struct Shard {
    std::mutex m;
    std::unordered_map<std::uintptr_t, ShadowWord> words;
    std::uint64_t granules_checked = 0;
    std::uint64_t read_promotions = 0;
  };

  [[nodiscard]] ThreadState& my_state();
  void refresh_prov(ThreadState& ts);
  void refresh_locks(ThreadState& ts);
  /// Intern a lock address to a session id + display name; caller holds
  /// locks_m_. Anonymous locks are named "lock#N" by first-seen order
  /// within the session (never by address — heap reuse across sessions
  /// would alias distinct locks under one name).
  std::int32_t intern_lock_locked(const void* lock, const char* name);
  void check_granule(ThreadState& ts, std::uintptr_t granule, bool is_write);
  void record(std::uintptr_t addr, const Epoch& prior, Access prior_kind,
              Access current_kind, const ThreadState& ts);
  void lock_acquire(ThreadState& ts, const void* lock, const char* name);
  void lock_release(ThreadState& ts, const void* lock);

  // Session identity for the thread-local slot cache (a new detector at
  // a reused address must not inherit stale cached pointers).
  const std::uint64_t session_;

  // Thread slots. states_m_ guards allocation only; each ThreadState is
  // then touched exclusively by its thread.
  mutable std::mutex states_m_;
  std::deque<ThreadState> states_;

  // Sharded shadow memory: annotation checking contends only per shard.
  std::unique_ptr<Shard[]> shards_;

  // Interned provenance, shared by all threads (touched at task begin,
  // region/lock changes, and report time — not per access).
  mutable std::mutex prov_m_;
  std::vector<std::vector<std::string>> prov_chains_{{std::string("root")}};
  std::unordered_map<std::string, std::uint32_t> prov_ids_;
  std::vector<std::vector<std::string>> lock_lists_{{}};
  std::unordered_map<std::string, std::uint32_t> lock_list_ids_;

  // Lock clocks (release publishes, acquire joins) and the lock
  // interning tables (id by address, display name by id).
  mutable std::mutex locks_m_;
  std::unordered_map<const void*, VC> lock_vcs_;
  std::unordered_map<const void*, std::int32_t> lock_ids_;
  std::vector<std::string> lock_id_names_;

  // TaskGroup join clocks; an entry lives from the group's first task
  // completion to its wait (mirrors SpBags::live_finishes_, so
  // stack-reused groups get fresh clocks). The structural clock `sp`
  // rides along for the deadlock analysis (empty when it is off).
  struct GroupClocks {
    VC vc;
    VC sp;
  };
  std::mutex groups_m_;
  std::unordered_map<const rt::TaskGroup*, GroupClocks> group_vcs_;

  /// Lock-order graph for deadlock analysis (null when off).
  std::unique_ptr<LockGraph> lockgraph_;

  std::mutex report_m_;
  std::vector<RaceReport> races_;
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint8_t>> reported_;

  // Detector bookkeeping, bumped from every instrumented thread — one
  // shared domain; the detector is a diagnostic build, not a perf path.
  DWS_SHARED std::atomic<std::uint64_t> races_found_{0};
  DWS_SHARED std::atomic<std::uint64_t> tasks_executed_{0};
  DWS_SHARED std::atomic<std::uint64_t> spawn_ordinal_{0};
  /// Frame (vector-clock index) allocator: one index per task body plus
  /// one per participating OS thread's root frame.
  DWS_SHARED std::atomic<std::uint32_t> next_slot_{0};
};

}  // namespace dws::race
