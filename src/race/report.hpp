// Types shared by the two race detectors (SP-bags serial replay and the
// FastTrack live-schedule mode): the access kinds, the report format with
// spawn-tree + lock provenance, and the Mode knob selecting a detector.
#pragma once

#ifdef DWS_RACE_DISABLED
#error "src/race requires a build without DWS_RACE_DISABLED (-DDWS_RACE=ON)"
#endif

#include <cstdint>
#include <string>
#include <vector>

namespace dws::race {

enum class Access : std::uint8_t { kRead = 0, kWrite = 1 };

[[nodiscard]] const char* access_name(Access a) noexcept;

/// One detected race between two logically parallel accesses whose
/// locksets share no lock (SP-bags) / whose epochs are unordered by the
/// modeled happens-before relation (FastTrack).
struct RaceReport {
  std::uintptr_t addr = 0;  ///< first conflicting granule (byte address)
  Access prior = Access::kRead;
  Access current = Access::kRead;
  /// Spawn-site chains, root first, for the earlier and the currently
  /// executing access ("root > spawn#3 'FFT' > spawn#9").
  std::vector<std::string> prior_chain;
  std::vector<std::string> current_chain;
  /// Lock provenance: the (necessarily disjoint) sets of locks each side
  /// held at its access. Empty means the access held no lock. Any lock
  /// from either list, taken on both sides, would have serialized the
  /// pair.
  std::vector<std::string> prior_locks;
  std::vector<std::string> current_locks;

  [[nodiscard]] std::string to_string() const;
};

/// One edge of a potential-deadlock cycle: some task acquired `acquired`
/// while already holding `held` (a lock-order edge held → acquired).
struct DeadlockEdge {
  std::string held;      ///< the cycle lock this edge departs from
  std::string acquired;  ///< the cycle lock this edge arrives at
  /// Spawn-site chain, root first, of the task that created the edge.
  std::vector<std::string> chain;
  /// Every lock the task held at the acquire (gate locks): the full
  /// context the edge was taken under, a superset of {held}.
  std::vector<std::string> gates;
};

/// One certified lock-order cycle: k acquisition events, pairwise from
/// logically parallel tasks, with pairwise-disjoint gate sets — i.e. a
/// schedule exists in which every task holds its `held` lock and blocks
/// on its `acquired` lock simultaneously.
struct DeadlockReport {
  std::vector<DeadlockEdge> cycle;

  [[nodiscard]] std::string to_string() const;
};

/// Result of the post-session lock-order-graph analysis (race::Replay
/// option check_deadlocks; see src/race/lockgraph.hpp).
struct DeadlockAnalysis {
  std::vector<DeadlockReport> reports;
  /// Simple cycles found in the lock-order graph, before certification.
  std::uint64_t cycles_found = 0;
  /// Cycles suppressed because every viable event assignment shares a
  /// gate lock between at least two edges (a common outer lock
  /// serializes the inner inversion in every schedule).
  std::uint64_t cycles_gate_suppressed = 0;
  /// Cycles suppressed because no assignment of pairwise-parallel tasks
  /// exists (the inversion only happens between serially ordered code,
  /// which can never block on itself).
  std::uint64_t cycles_serial_suppressed = 0;
  /// False when the session ran with check_deadlocks off.
  bool enabled = false;

  [[nodiscard]] bool clean() const noexcept { return reports.empty(); }
};

/// Which detector a race::Replay session drives (see docs/CHECKING.md
/// for the trade-off):
///  - kSpBags: one serial depth-first execution, certifies the whole
///    task DAG (ALL-SETS lock modeling). The default.
///  - kFastTrack: vector clocks riding the live parallel schedule;
///    detection itself is a parallel workload, but lock-induced ordering
///    follows the one observed schedule (non-certifying with locks).
enum class Mode : std::uint8_t { kSpBags = 0, kFastTrack = 1 };

[[nodiscard]] const char* mode_name(Mode m) noexcept;

/// Parse a DWS_RACE_MODE-style spelling ("spbags"/"sp-bags"/"serial",
/// "fasttrack"/"ft"/"parallel"; case-insensitive). Returns false (and
/// leaves `out` untouched) for anything else.
[[nodiscard]] bool parse_mode(const char* s, Mode& out) noexcept;

/// The detector modes a test run should exercise: both, unless the
/// DWS_RACE_MODE environment variable restricts to one. An unparsable
/// value falls back to both (with a stderr warning).
[[nodiscard]] std::vector<Mode> modes_from_env();

}  // namespace dws::race
