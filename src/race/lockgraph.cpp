#include "race/lockgraph.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace dws::race {

void LockGraph::record_acquire(
    std::int32_t acquired, const std::vector<std::int32_t>& held,
    std::vector<std::string> chain, std::uint64_t tag,
    const std::function<bool(std::uint64_t)>& parallel_with_earlier) {
  if (held.empty()) return;
  std::lock_guard<std::mutex> lock(m_);
  if (!dedup_.emplace(acquired, tag, held).second) return;
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  Event ev;
  ev.acquired = acquired;
  ev.held = held;
  ev.chain = std::move(chain);
  ev.tag = tag;
  ev.parallel.reserve(events_.size());
  // Parallelism is evaluated now, against every earlier event: the
  // detectors' series/parallel relations are not queryable after the
  // session (SP-bags merges everything serial by the final wait), and
  // the relation between two completed execution points never changes
  // after the later one runs — so bits taken here are final.
  for (const Event& e : events_) ev.parallel.push_back(parallel_with_earlier(e.tag));
  events_.push_back(std::move(ev));
}

bool LockGraph::parallel(std::size_t a, std::size_t b) const {
  return a < b ? events_[b].parallel[a] : events_[a].parallel[b];
}

bool LockGraph::gates_disjoint(std::size_t a, std::size_t b) const {
  const auto& sa = events_[a].held;
  const auto& sb = events_[b].held;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] == sb[j]) return false;
    if (sa[i] < sb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return true;
}

DeadlockAnalysis LockGraph::analyze(
    const std::function<std::string(std::int32_t)>& name_of) const {
  std::lock_guard<std::mutex> lock(m_);
  DeadlockAnalysis out;
  out.enabled = true;

  // Dense node ids over the locks that appear in events, and the edge
  // multimap (source, target) -> contributing event indices. One event
  // holding {H1, H2} and acquiring L contributes both H1→L and H2→L.
  std::map<std::int32_t, int> node_of;
  std::vector<std::int32_t> lock_of;
  const auto node = [&](std::int32_t l) {
    const auto [it, inserted] =
        node_of.emplace(l, static_cast<int>(lock_of.size()));
    if (inserted) lock_of.push_back(l);
    return it->second;
  };
  std::map<std::pair<int, int>, std::vector<std::size_t>> edge_events;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const int to = node(events_[i].acquired);
    for (const std::int32_t h : events_[i].held) {
      edge_events[{node(h), to}].push_back(i);
    }
  }
  const int n = static_cast<int>(lock_of.size());
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const auto& [key, evs] : edge_events) {
    adj[static_cast<std::size_t>(key.first)].push_back(key.second);
  }

  // Tarjan SCC. Cycles cannot cross components, so enumeration below
  // only walks within one component at a time.
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  {
    std::vector<int> index(static_cast<std::size_t>(n), -1);
    std::vector<int> low(static_cast<std::size_t>(n), 0);
    std::vector<char> on_stack(static_cast<std::size_t>(n), 0);
    std::vector<int> stack;
    int next_index = 0;
    int next_comp = 0;
    // Iterative DFS: frames of (node, next-neighbor position).
    std::vector<std::pair<int, std::size_t>> frames;
    for (int s = 0; s < n; ++s) {
      if (index[static_cast<std::size_t>(s)] != -1) continue;
      frames.emplace_back(s, 0);
      while (!frames.empty()) {
        auto& [u, pos] = frames.back();
        const auto ui = static_cast<std::size_t>(u);
        if (pos == 0) {
          index[ui] = low[ui] = next_index++;
          stack.push_back(u);
          on_stack[ui] = 1;
        }
        if (pos < adj[ui].size()) {
          const int v = adj[ui][pos++];
          const auto vi = static_cast<std::size_t>(v);
          if (index[vi] == -1) {
            frames.emplace_back(v, 0);
          } else if (on_stack[vi] != 0) {
            low[ui] = std::min(low[ui], index[vi]);
          }
        } else {
          if (low[ui] == index[ui]) {
            int w;
            do {
              w = stack.back();
              stack.pop_back();
              on_stack[static_cast<std::size_t>(w)] = 0;
              comp[static_cast<std::size_t>(w)] = next_comp;
            } while (w != u);
            ++next_comp;
          }
          frames.pop_back();
          if (!frames.empty()) {
            const auto pi = static_cast<std::size_t>(frames.back().first);
            low[pi] = std::min(low[pi], low[ui]);
          }
        }
      }
    }
  }

  // Certify one enumerated cycle: search for an assignment of one event
  // per edge with pairwise-parallel tasks and pairwise-disjoint gates.
  // Tracks whether an all-parallel assignment existed at all, so a cycle
  // killed only by the gate rule is counted as gate-suppressed.
  const auto certify = [&](const std::vector<int>& cycle) {
    const std::size_t k = cycle.size();
    std::vector<const std::vector<std::size_t>*> cands(k);
    for (std::size_t i = 0; i < k; ++i) {
      cands[i] = &edge_events.at({cycle[i], cycle[(i + 1) % k]});
    }
    bool viable = false;
    bool parallel_only = false;  // all-parallel assignment, gates shared
    std::vector<std::size_t> chosen;
    std::vector<std::size_t> witness;
    std::size_t steps = 0;
    const std::function<void(std::size_t, bool)> pick = [&](std::size_t ei,
                                                            bool gates_ok) {
      if (viable || steps > kMaxAssignmentSteps) return;
      if (ei == k) {
        if (gates_ok) {
          viable = true;
          witness = chosen;
        } else {
          parallel_only = true;
        }
        return;
      }
      for (const std::size_t cand : *cands[ei]) {
        if (viable || ++steps > kMaxAssignmentSteps) return;
        bool par_ok = true;
        bool g_ok = gates_ok;
        for (const std::size_t prev : chosen) {
          if (!parallel(prev, cand)) {
            par_ok = false;
            break;
          }
          if (g_ok && !gates_disjoint(prev, cand)) g_ok = false;
        }
        if (!par_ok) continue;
        chosen.push_back(cand);
        pick(ei + 1, g_ok);
        chosen.pop_back();
      }
    };
    pick(0, true);

    if (viable) {
      if (out.reports.size() < kMaxReports) {
        DeadlockReport r;
        for (std::size_t i = 0; i < k; ++i) {
          const Event& ev = events_[witness[i]];
          DeadlockEdge e;
          e.held = name_of(lock_of[static_cast<std::size_t>(cycle[i])]);
          e.acquired =
              name_of(lock_of[static_cast<std::size_t>(cycle[(i + 1) % k])]);
          e.chain = ev.chain;
          for (const std::int32_t g : ev.held) e.gates.push_back(name_of(g));
          r.cycle.push_back(std::move(e));
        }
        out.reports.push_back(std::move(r));
      }
    } else if (parallel_only) {
      ++out.cycles_gate_suppressed;
    } else {
      ++out.cycles_serial_suppressed;
    }
  };

  // Enumerate simple cycles: DFS from each start node s, restricted to
  // s's component and to nodes ≥ s (each cycle is found exactly once,
  // rooted at its minimum node — the Johnson-style restriction).
  std::vector<int> path;
  std::vector<char> on_path(static_cast<std::size_t>(n), 0);
  bool capped = false;
  const std::function<void(int, int)> dfs = [&](int s, int u) {
    if (capped) return;
    const auto ui = static_cast<std::size_t>(u);
    path.push_back(u);
    on_path[ui] = 1;
    for (const int v : adj[ui]) {
      if (capped) break;
      if (comp[static_cast<std::size_t>(v)] != comp[static_cast<std::size_t>(s)])
        continue;
      if (v == s) {
        if (path.size() >= 2) {
          if (++out.cycles_found > kMaxCycles) {
            capped = true;
            break;
          }
          certify(path);
        }
      } else if (v > s && on_path[static_cast<std::size_t>(v)] == 0 &&
                 path.size() < kMaxCycleLen) {
        dfs(s, v);
      }
    }
    on_path[ui] = 0;
    path.pop_back();
  };
  for (int s = 0; s < n && !capped; ++s) dfs(s, s);
  return out;
}

std::uint64_t LockGraph::events_recorded() const {
  std::lock_guard<std::mutex> lock(m_);
  return events_.size();
}

std::uint64_t LockGraph::events_dropped() const {
  std::lock_guard<std::mutex> lock(m_);
  return dropped_;
}

}  // namespace dws::race
