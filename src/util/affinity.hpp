// CPU-affinity helpers for the real runtime. DWS pins worker i of every
// program to hardware core i so that the core allocation table's slots map
// 1:1 onto hardware cores (§3.1 of the paper).
//
// All functions degrade gracefully on platforms/cgroups where affinity is
// restricted: failures are reported, never fatal, because the scheduling
// policies remain correct (just less cache-friendly) without pinning.
#pragma once

#include <thread>

namespace dws::util {

/// Number of logical CPUs visible to this process (>= 1).
[[nodiscard]] unsigned hardware_cores() noexcept;

/// Pin the calling thread to logical CPU `core` (mod the visible count).
/// Returns true on success.
bool pin_this_thread(unsigned core) noexcept;

/// Remove any affinity restriction from the calling thread (all CPUs).
/// Returns true on success.
bool unpin_this_thread() noexcept;

}  // namespace dws::util
