#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace dws::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "";  // bare flag
    }
  }
}

bool CliArgs::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string CliArgs::get_str(const std::string& key,
                             const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

long CliArgs::get_int(const std::string& key, long def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::size_t pos = 0;
  const long v = std::stol(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::invalid_argument("--" + key + " expects an integer, got '" +
                                it->second + "'");
  }
  return v;
}

double CliArgs::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::invalid_argument("--" + key + " expects a number, got '" +
                                it->second + "'");
  }
  return v;
}

bool CliArgs::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on")
    return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("--" + key + " expects a boolean, got '" + v +
                              "'");
}

std::vector<long> CliArgs::get_int_list(const std::string& key,
                                        const std::vector<long>& def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::vector<long> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    std::size_t pos = 0;
    out.push_back(std::stol(item, &pos));
    if (pos != item.size()) {
      throw std::invalid_argument("--" + key + " expects integers, got '" +
                                  item + "'");
    }
  }
  return out;
}

}  // namespace dws::util
