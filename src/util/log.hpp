// Minimal leveled logger. Thread-safe, zero-allocation when the level is
// filtered out, and silent by default so benchmark output stays clean.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace dws::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded. Default: kWarn.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit a single line (already formatted) at `level`. Serialized internally.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::ostringstream os;
  (os << ... << args);
  log_line(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(LogLevel::kError, args...);
}

}  // namespace dws::util
