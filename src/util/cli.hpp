// Tiny argv parser shared by the bench binaries and examples.
//
// Accepts `--key=value`, `--key value`, and bare `--flag` forms. Typed
// getters return a caller-supplied default when the key is absent and
// throw std::invalid_argument on malformed values, so every binary fails
// loudly on a typo'd experiment parameter instead of silently measuring
// the wrong configuration.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace dws::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get_str(const std::string& key,
                                    const std::string& def = "") const;
  [[nodiscard]] long get_int(const std::string& key, long def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  /// Comma-separated list of longs, e.g. `--tsleep=1,2,4,8`.
  [[nodiscard]] std::vector<long> get_int_list(
      const std::string& key, const std::vector<long>& def) const;

  /// Positional (non `--`) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& program_name() const noexcept {
    return program_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace dws::util
