#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace dws::util {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) /
         static_cast<double>(xs_.size());
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : xs_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs_.size() - 1));
}

double Samples::min() const {
  return xs_.empty() ? 0.0 : *std::min_element(xs_.begin(), xs_.end());
}

double Samples::max() const {
  return xs_.empty() ? 0.0 : *std::max_element(xs_.begin(), xs_.end());
}

namespace {

double percentile_of_sorted(const std::vector<double>& sorted, double q) {
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double Samples::percentile(double q) const {
  if (xs_.empty()) return 0.0;
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  return percentile_of_sorted(sorted, q);
}

std::vector<double> Samples::percentiles(
    const std::vector<double>& qs) const {
  if (xs_.empty()) return std::vector<double>(qs.size(), 0.0);
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) out.push_back(percentile_of_sorted(sorted, q));
  return out;
}

std::string Samples::summary() const {
  std::ostringstream os;
  os << mean() << " ± " << stddev() << " (n=" << xs_.size() << ")";
  return os.str();
}

double geomean(const std::vector<double>& xs) {
  // Non-positive samples are excluded (see stats.hpp for the policy);
  // log() of them would turn the whole aggregate into -inf/NaN.
  double log_sum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x <= 0.0) continue;
    log_sum += std::log(x);
    ++n;
  }
  if (n == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(n));
}

}  // namespace dws::util
