#include "util/log.hpp"

#include <iostream>
#include <mutex>

namespace dws::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[dws " << level_name(level) << "] " << msg << '\n';
}

}  // namespace dws::util
