// Deterministic pseudo-random number generators used throughout DWS.
//
// The runtime needs fast, per-worker, data-race-free randomness for victim
// selection; the simulator needs *reproducible* randomness so that every
// experiment can be replayed bit-for-bit from a seed. Both are served by
// xoshiro256** seeded through SplitMix64 (the scheme recommended by the
// xoshiro authors); std::mt19937_64 is deliberately avoided because its
// 2.5 KB state is hostile to per-worker cache lines.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace dws::util {

/// SplitMix64: tiny PRNG used to expand a single 64-bit seed into the
/// larger xoshiro state. Also useful on its own for hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the general-purpose generator. Satisfies the C++
/// UniformRandomBitGenerator requirements so it can be plugged into
/// <random> distributions when needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // 128-bit multiply; rejection keeps the result exactly uniform.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli draw with probability p of returning true.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dws::util
