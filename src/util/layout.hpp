// Cache-line layout discipline for concurrent structs.
//
// DWS's hot structures are all built around the same invariant: a word
// written by one thread (or process) must not share a cache line with a
// word written by another, or every store turns into a coherence miss for
// the neighbour ("Scheduling computations with provably low synchronization
// overheads" makes block transfers the dominating cost at scale). This
// header gives that invariant a name in the source:
//
//  - DWS_OWNED_BY(owner) / DWS_SHARED annotate *fields* with their sharing
//    domain. "owned_by:worker" means only the owning worker writes it
//    (foreign threads may read); "shared" means multiple threads write it
//    (CAS words, inbox heads, shutdown flags). The dws-false-sharing
//    clang-tidy check (tools/tidy/FalseSharingCheck.cpp) reads these
//    annotations and requires fields of *different* domains to be
//    alignas(kCacheLineBytes)-isolated or carry an explicit
//    `// dws-layout: packed-ok <reason>` sanction.
//  - The audit API below lets tools/layout_audit enumerate the concrete
//    layout (size, field offsets, cache-line map, cross-domain conflicts)
//    of every registered struct and emit results/layout_audit.json, which
//    CI diffs against the committed docs/layout_golden.json so any layout
//    change is an explicit, reviewed diff.
//
// The annotations compile to [[clang::annotate]] under clang (visible to
// the tidy plugin's AST matchers) and to nothing under other compilers, so
// gcc builds are unaffected.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#if defined(__clang__)
#define DWS_OWNED_BY(owner) [[clang::annotate("dws::owned_by:" #owner)]]
#define DWS_SHARED [[clang::annotate("dws::shared")]]
#else
#define DWS_OWNED_BY(owner)
#define DWS_SHARED
#endif

namespace dws::layout {

/// Destructive-interference granularity the layout discipline targets.
/// std::hardware_destructive_interference_size is deliberately not used:
/// it is a compile-time constant that varies across compiler versions and
/// flags, which would make the committed layout golden unstable.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Audit hook: structs registered with tools/layout_audit declare
/// `friend struct dws::layout::Access;` so the audit translation unit can
/// take offsetof() of private members without widening their real API.
struct Access;

// ---- Audit records ----------------------------------------------------

/// One field of an audited struct, as the audit binary reports it.
struct FieldInfo {
  std::string name;
  std::size_t offset = 0;
  std::size_t size = 0;
  std::size_t align = 0;
  /// Sharing domain mirrored from the field's DWS_OWNED_BY/DWS_SHARED
  /// annotation: "owned_by:<owner>", "shared", or "" for cold/untracked
  /// fields. The audit registry re-declares the domain (attributes are not
  /// introspectable at runtime); dws-false-sharing enforces the source
  /// annotations themselves, so a divergence between the two is a review
  /// error the golden diff makes visible.
  std::string domain;
};

/// A set of fields whose extents overlap one cache line while belonging to
/// at least two distinct sharing domains — the definition of (potential)
/// destructive interference this repo audits for.
struct LineConflict {
  std::size_t line = 0;  ///< cache-line index within the struct
  std::vector<std::string> fields;
  std::vector<std::string> domains;
};

/// Full audited layout of one struct.
struct StructInfo {
  std::string name;
  std::size_t size = 0;
  std::size_t align = 0;
  std::vector<FieldInfo> fields;
  /// Reason a known cross-domain packing is accepted (mirrors the
  /// `// dws-layout: packed-ok <reason>` sanction at the declaration);
  /// empty when the struct is expected conflict-free.
  std::string packed_ok;
};

/// Collects one struct's fields and computes its conflicts; append-only
/// builder used by the DWS_AUDIT_* macros below.
class StructBuilder {
 public:
  StructBuilder(std::vector<StructInfo>& out, std::string name,
                std::size_t size, std::size_t align)
      : out_(out) {
    info_.name = std::move(name);
    info_.size = size;
    info_.align = align;
  }
  StructBuilder(const StructBuilder&) = delete;
  StructBuilder& operator=(const StructBuilder&) = delete;
  ~StructBuilder() { out_.push_back(std::move(info_)); }

  void field(std::string name, std::size_t offset, std::size_t size,
             std::size_t align, std::string domain) {
    info_.fields.push_back(
        {std::move(name), offset, size, align, std::move(domain)});
  }

  /// Record the struct-level packed-ok sanction (see StructInfo::packed_ok).
  void packed_ok(std::string reason) { info_.packed_ok = std::move(reason); }

 private:
  std::vector<StructInfo>& out_;
  StructInfo info_;
};

/// Cache lines [first, last] (inclusive) a field extent touches.
[[nodiscard]] constexpr std::pair<std::size_t, std::size_t> lines_of(
    std::size_t offset, std::size_t size) noexcept {
  const std::size_t last = offset + (size > 0 ? size - 1 : 0);
  return {offset / kCacheLineBytes, last / kCacheLineBytes};
}

/// Cross-domain conflicts of one audited struct: for every cache line the
/// struct spans, the domain-annotated fields overlapping it; a conflict is
/// a line with ≥ 2 distinct non-empty domains. Unannotated (cold) fields
/// never conflict — the discipline is about *writer* domains.
[[nodiscard]] inline std::vector<LineConflict> conflicts_of(
    const StructInfo& s) {
  std::vector<LineConflict> out;
  const std::size_t num_lines =
      (s.size + kCacheLineBytes - 1) / kCacheLineBytes;
  for (std::size_t line = 0; line < num_lines; ++line) {
    LineConflict c;
    c.line = line;
    for (const FieldInfo& f : s.fields) {
      if (f.domain.empty()) continue;
      const auto [first, last] = lines_of(f.offset, f.size);
      if (line < first || line > last) continue;
      c.fields.push_back(f.name);
      bool seen = false;
      for (const std::string& d : c.domains) seen = seen || d == f.domain;
      if (!seen) c.domains.push_back(f.domain);
    }
    if (c.domains.size() >= 2) out.push_back(std::move(c));
  }
  return out;
}

}  // namespace dws::layout

// ---- Audit registration macros ----------------------------------------
//
// Used inside dws::layout::Access member functions (the friend hook) in
// tools/layout_audit/main.cpp, one block per struct:
//
//   {
//     DWS_AUDIT_STRUCT(out, dws::WorkerStats);
//     DWS_AUDIT_FIELD(tasks_executed, "owned_by:worker");
//     ...
//   }
//
// offsetof on our non-standard-layout structs is conditionally-supported;
// the audit target compiles with -Wno-invalid-offsetof and every audited
// type is verified standard-enough by its own tests.

#define DWS_AUDIT_STRUCT(out, ...)                                    \
  ::dws::layout::StructBuilder dws_audit_builder{                     \
      (out), #__VA_ARGS__, sizeof(__VA_ARGS__), alignof(__VA_ARGS__)}; \
  using DwsAuditType = __VA_ARGS__

#define DWS_AUDIT_FIELD(member, domain)                                  \
  dws_audit_builder.field(                                               \
      #member, offsetof(DwsAuditType, member),                           \
      sizeof(static_cast<DwsAuditType*>(nullptr)->member),               \
      alignof(decltype(static_cast<DwsAuditType*>(nullptr)->member)),    \
      (domain))

#define DWS_AUDIT_PACKED_OK(reason) dws_audit_builder.packed_ok((reason))
