// Summary statistics used by the benchmark harness (Eq. 2 averaging,
// confidence reporting) and by the simulator's metric collection.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dws::util {

/// Online accumulator (Welford) — numerically stable mean/variance without
/// retaining samples. Suitable for hot paths in the simulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample container with percentile support, for offline reporting.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  void reserve(std::size_t n) { xs_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return xs_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated percentile; q in [0,1]. Empty => 0.
  [[nodiscard]] double percentile(double q) const;
  /// Several quantiles from a single sort (percentile() re-sorts per
  /// call, which is quadratic when a report asks for p50/p90/p99/...).
  /// Returns one value per q, in input order.
  [[nodiscard]] std::vector<double> percentiles(
      const std::vector<double>& qs) const;
  [[nodiscard]] double median() const { return percentile(0.5); }

  [[nodiscard]] const std::vector<double>& values() const noexcept { return xs_; }

  /// "mean ± stddev (n=N)" for human-readable reports.
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<double> xs_;
};

/// Geometric mean (used for cross-mix aggregate speedups). The geometric
/// mean is defined over positive reals only; a zero or negative sample is
/// a broken measurement (a zero-time bench rep), and feeding it to log()
/// used to poison the whole figure with -inf/NaN. Policy: non-positive
/// samples are excluded from the mean. Returns 0 for empty input or when
/// every sample is non-positive.
[[nodiscard]] double geomean(const std::vector<double>& xs);

}  // namespace dws::util
