// Wall-clock timing helpers for the real runtime and the harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace dws::util {

/// Monotonic stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  [[nodiscard]] std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }
  [[nodiscard]] double elapsed_us() const {
    return static_cast<double>(elapsed_ns()) / 1e3;
  }
  [[nodiscard]] double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }
  [[nodiscard]] double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) / 1e9;
  }

 private:
  clock::time_point start_;
};

}  // namespace dws::util
