#include "util/affinity.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace dws::util {

unsigned hardware_cores() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

bool pin_this_thread(unsigned core) noexcept {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % hardware_cores(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

bool unpin_this_thread() noexcept {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  for (unsigned i = 0; i < hardware_cores(); ++i) CPU_SET(i, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace dws::util
