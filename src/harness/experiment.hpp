// Experiment drivers for the evaluation figures: solo baselines, co-run
// mixes on the simulated 16-core machine (Fig. 3 measurement methodology,
// Eq. 2 averaging), and normalized reporting.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "apps/profiles.hpp"
#include "core/types.hpp"
#include "sim/engine.hpp"
#include "util/stats.hpp"

namespace dws::harness {

/// Fixed experiment-wide settings.
struct ExperimentConfig {
  sim::SimParams params;       ///< machine + policy parameters
  double work_scale = 1.0;     ///< problem-size knob for all profiles
  unsigned target_runs = 4;    ///< repetitions per program (Fig. 3)
  unsigned baseline_runs = 4;  ///< repetitions for the solo baseline
};

/// Solo baseline: each app alone on all k cores under plain work-stealing
/// (the paper's "average non-interference execution time", §4.1). Keyed
/// by app name, value = mean run time (virtual us).
std::map<std::string, double> run_solo_baselines(const ExperimentConfig& cfg);

/// Result of co-running one mix under one mode.
struct MixRun {
  std::string mode;
  std::pair<unsigned, unsigned> mix;
  /// Per program: name, mean run time, normalized time (vs solo baseline).
  struct PerProgram {
    std::string name;
    double mean_us = 0.0;
    double normalized = 0.0;
    sim::ProgramResult raw;
  };
  PerProgram first, second;
};

/// Run mix (i, j) under `mode`. `baselines` must contain both app names.
MixRun run_mix(const ExperimentConfig& cfg,
               std::pair<unsigned, unsigned> mix, SchedMode mode,
               const std::map<std::string, double>& baselines);

/// Sum of both programs' normalized times — the scalar the paper's
/// "performance of the mix" comparisons reduce to.
[[nodiscard]] double mix_total_normalized(const MixRun& run);

/// Multi-seed replication: run the mix under `replications` different
/// engine seeds (cfg.params.seed + r) and aggregate per-program
/// normalized times. The simulator is deterministic per seed, so this
/// measures schedule sensitivity, not noise.
struct ReplicatedMix {
  std::string mode;
  std::pair<unsigned, unsigned> mix;
  util::Samples first_normalized;
  util::Samples second_normalized;
};

ReplicatedMix run_mix_replicated(const ExperimentConfig& cfg,
                                 std::pair<unsigned, unsigned> mix,
                                 SchedMode mode,
                                 const std::map<std::string, double>& baselines,
                                 unsigned replications);

}  // namespace dws::harness
