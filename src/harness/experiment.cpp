#include "harness/experiment.hpp"

#include <stdexcept>

#include "harness/mixes.hpp"

namespace dws::harness {

namespace {

sim::SimProgramSpec spec_for(const apps::SimAppProfile& profile,
                             SchedMode mode, unsigned target_runs) {
  sim::SimProgramSpec spec;
  spec.name = profile.name;
  spec.mode = mode;
  spec.dag = &profile.dag;
  spec.target_runs = target_runs;
  spec.default_mem_intensity = profile.mem_intensity;
  return spec;
}

}  // namespace

std::map<std::string, double> run_solo_baselines(const ExperimentConfig& cfg) {
  std::map<std::string, double> out;
  for (unsigned id = 1; id <= 8; ++id) {
    const std::string name = app_name(id);
    const apps::SimAppProfile profile =
        apps::make_sim_profile(name, cfg.work_scale);
    // Solo + all cores + traditional work-stealing: with no co-runner,
    // ABP yields are free, so this is the paper's MIT-Cilk solo baseline.
    const sim::SimResult r = sim::simulate_solo(
        cfg.params, spec_for(profile, SchedMode::kAbp, cfg.baseline_runs));
    if (r.hit_time_limit) {
      throw std::runtime_error("baseline for " + name + " hit the time limit");
    }
    out[name] = r.programs[0].mean_run_time_us;
  }
  return out;
}

MixRun run_mix(const ExperimentConfig& cfg, std::pair<unsigned, unsigned> mix,
               SchedMode mode, const std::map<std::string, double>& baselines) {
  const std::string name_a = app_name(mix.first);
  const std::string name_b = app_name(mix.second);
  const apps::SimAppProfile prof_a =
      apps::make_sim_profile(name_a, cfg.work_scale);
  const apps::SimAppProfile prof_b =
      apps::make_sim_profile(name_b, cfg.work_scale);

  sim::SimEngine engine(cfg.params,
                        {spec_for(prof_a, mode, cfg.target_runs),
                         spec_for(prof_b, mode, cfg.target_runs)});
  const sim::SimResult r = engine.run();
  if (r.hit_time_limit) {
    throw std::runtime_error("mix " + mix_label(mix) + " under " +
                             to_string(mode) + " hit the time limit");
  }

  MixRun out;
  out.mode = to_string(mode);
  out.mix = mix;
  auto fill = [&](MixRun::PerProgram& slot, const std::string& name) {
    const sim::ProgramResult& pr = r.program(name);
    slot.name = name;
    slot.mean_us = pr.mean_run_time_us;
    const auto it = baselines.find(name);
    if (it == baselines.end()) {
      throw std::invalid_argument("missing baseline for " + name);
    }
    slot.normalized = pr.mean_run_time_us / it->second;
    slot.raw = pr;
  };
  fill(out.first, name_a);
  fill(out.second, name_b);
  return out;
}

double mix_total_normalized(const MixRun& run) {
  return run.first.normalized + run.second.normalized;
}

ReplicatedMix run_mix_replicated(const ExperimentConfig& cfg,
                                 std::pair<unsigned, unsigned> mix,
                                 SchedMode mode,
                                 const std::map<std::string, double>& baselines,
                                 unsigned replications) {
  ReplicatedMix out;
  out.mode = to_string(mode);
  out.mix = mix;
  for (unsigned r = 0; r < replications; ++r) {
    ExperimentConfig replica = cfg;
    replica.params.seed = cfg.params.seed + r;
    const MixRun run = run_mix(replica, mix, mode, baselines);
    out.first_normalized.add(run.first.normalized);
    out.second_normalized.add(run.second.normalized);
  }
  return out;
}

}  // namespace dws::harness
