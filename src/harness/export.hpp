// Result export: write SimResult program records and timelines to CSV
// files so external tooling (spreadsheets, matplotlib, pandas) can plot
// the reproduced figures. Every bench binary accepts --out=<dir> and
// routes through these helpers.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/engine.hpp"

namespace dws::harness {

/// One row per program: name, mean run time, per-repetition times joined
/// by ';', and the full stat counters.
void write_programs_csv(std::ostream& os, const sim::SimResult& result);

/// One row per timeline sample: t_us, one active-count column per
/// program, free cores. Empty timeline writes only the header.
void write_timeline_csv(std::ostream& os, const sim::SimResult& result);

/// One row per core: busy and productive (exec) microseconds.
void write_cores_csv(std::ostream& os, const sim::SimResult& result);

/// Convenience: create `<dir>/<stem>_{programs,timeline,cores}.csv`.
/// Returns an empty string on success, else an error description. The
/// directory must already exist (benches create it with
/// std::filesystem).
std::string export_result(const std::string& dir, const std::string& stem,
                          const sim::SimResult& result);

}  // namespace dws::harness
