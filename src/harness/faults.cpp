#include "harness/faults.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <system_error>
#include <thread>

namespace dws::harness {

pid_t spawn_process(const std::function<int()>& body) {
  const pid_t child = ::fork();
  if (child < 0) {
    throw std::system_error(errno, std::generic_category(), "fork");
  }
  if (child == 0) {
    int status = 255;
    try {
      status = body();
    } catch (...) {
      status = 254;
    }
    ::_exit(status);
  }
  return child;
}

void kill_process(pid_t pid) noexcept { ::kill(pid, SIGKILL); }

int wait_process(pid_t pid) {
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) {
    throw std::system_error(errno, std::generic_category(), "waitpid");
  }
  if (WIFEXITED(wstatus)) return WEXITSTATUS(wstatus);
  if (WIFSIGNALED(wstatus)) return 128 + WTERMSIG(wstatus);
  return -1;
}

bool process_alive(pid_t pid) noexcept {
  if (::kill(pid, 0) == 0) return true;
  return errno != ESRCH;
}

bool shm_segment_exists(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDONLY, 0);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

namespace {
using Flag = std::atomic<unsigned>;
static_assert(Flag::is_always_lock_free,
              "sync flags must be lock-free to be fork-safe");
constexpr std::size_t kBytes = SyncFlags::kFlags * sizeof(Flag);
}  // namespace

SyncFlags::SyncFlags() {
  mem_ = ::mmap(nullptr, kBytes, PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem_ == MAP_FAILED) {
    mem_ = nullptr;
    throw std::system_error(errno, std::generic_category(), "mmap(SyncFlags)");
  }
  auto* flags = static_cast<Flag*>(mem_);
  for (std::size_t i = 0; i < kFlags; ++i) {
    new (&flags[i]) Flag(0);
  }
}

SyncFlags::~SyncFlags() {
  if (mem_ != nullptr) ::munmap(mem_, kBytes);
}

void SyncFlags::raise(std::size_t i) noexcept {
  static_cast<Flag*>(mem_)[i].store(1, std::memory_order_release);
}

bool SyncFlags::is_raised(std::size_t i) const noexcept {
  return static_cast<const Flag*>(mem_)[i].load(std::memory_order_acquire) !=
         0;
}

bool SyncFlags::wait_for(std::size_t i,
                         std::chrono::milliseconds timeout) const noexcept {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!is_raised(i)) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return true;
}

}  // namespace dws::harness
