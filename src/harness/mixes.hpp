// The paper's benchmark mixes (§4.1, Fig. 4/5): pairs (i, j) meaning
// Table-2 programs p-i and p-j co-run on the 16-core machine.
#pragma once

#include <array>
#include <string>
#include <utility>

namespace dws::harness {

/// Table-2 id (1-based) -> app name.
[[nodiscard]] const char* app_name(unsigned table2_id);

/// The eight mixes shown in Fig. 4 and Fig. 5.
inline constexpr std::array<std::pair<unsigned, unsigned>, 8> kFigureMixes{{
    {1, 8},  // FFT + Mergesort (also the Fig. 6 T_SLEEP mix)
    {2, 7},  // PNN + SOR (the cache-locality discussion mix)
    {3, 6},  // Cholesky + Heat
    {4, 5},  // LU + GE
    {1, 2},  // FFT + PNN
    {3, 8},  // Cholesky + Mergesort
    {5, 7},  // GE + SOR
    {4, 6},  // LU + Heat
}};

/// "(1, 8)" display form.
[[nodiscard]] std::string mix_label(std::pair<unsigned, unsigned> mix);

}  // namespace dws::harness
