// Fault-injection helpers for multi-process crash tests: fork real
// co-running processes over the shared core allocation table, SIGKILL
// them at chosen points, and synchronise parent/child through lock-free
// flags in anonymous shared memory (no pipes, no signals-as-messages —
// a SIGKILLed child must not be able to corrupt the sync channel).
//
// These live in the harness (not the runtime) because they are test
// scaffolding: production code never SIGKILLs a co-runner; it only
// recovers from one (coordinator stale sweep, §3.4 deployment note).
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>

namespace dws::harness {

/// fork() and run `body` in the child; the child terminates via _exit with
/// the returned status (never runs atexit handlers or unwinds into the
/// parent's state). Returns the child pid to the parent. Throws
/// std::system_error if fork fails.
///
/// Children must not touch gtest assertions: report failures through the
/// exit status (bit flags) and let the parent assert on them.
[[nodiscard]] pid_t spawn_process(const std::function<int()>& body);

/// SIGKILL `pid`. The process dies without any chance to clean up —
/// exactly the crash the liveness protocol must tolerate.
void kill_process(pid_t pid) noexcept;

/// waitpid(pid): returns the exit status for a normal exit, or
/// 128 + signal number if the child died to a signal (so a SIGKILLed
/// child reports 137, mirroring shell convention).
int wait_process(pid_t pid);

/// True while the OS process exists (kill(pid, 0); EPERM counts as
/// alive). A zombie still counts as existing until reaped.
[[nodiscard]] bool process_alive(pid_t pid) noexcept;

/// True if a POSIX shm segment with this name currently exists. Used by
/// crash tests to prove that recovery paths leak no segments.
[[nodiscard]] bool shm_segment_exists(const std::string& name);

/// A small array of atomic flags in anonymous MAP_SHARED memory, usable
/// across fork() for deterministic crash choreography: the child raises a
/// flag right before the parent kills it, so the kill lands at a known
/// point in the child's execution.
class SyncFlags {
 public:
  static constexpr std::size_t kFlags = 8;

  SyncFlags();
  SyncFlags(const SyncFlags&) = delete;
  SyncFlags& operator=(const SyncFlags&) = delete;
  ~SyncFlags();

  /// Raise flag `i` (release order).
  void raise(std::size_t i) noexcept;

  /// True if flag `i` has been raised (acquire order).
  [[nodiscard]] bool is_raised(std::size_t i) const noexcept;

  /// Block (sleeping in 100µs steps) until flag `i` is raised or the
  /// timeout expires; returns whether the flag was seen.
  [[nodiscard]] bool wait_for(
      std::size_t i,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000))
      const noexcept;

 private:
  void* mem_ = nullptr;
};

}  // namespace dws::harness
