#include "harness/export.hpp"

#include <fstream>
#include <ostream>

namespace dws::harness {

void write_programs_csv(std::ostream& os, const sim::SimResult& result) {
  os << "name,mean_run_time_us,run_times_us,tasks_executed,steals,"
        "failed_steals,yields,sleeps,wakes,evictions,coordinator_ticks,"
        "cores_claimed,cores_reclaimed,exec_time_us,cache_penalty_us,"
        "steal_overhead_us\n";
  for (const auto& p : result.programs) {
    os << p.name << ',' << p.mean_run_time_us << ',';
    for (std::size_t i = 0; i < p.run_times_us.size(); ++i) {
      if (i > 0) os << ';';
      os << p.run_times_us[i];
    }
    os << ',' << p.tasks_executed << ',' << p.steals << ','
       << p.failed_steals << ',' << p.yields << ',' << p.sleeps << ','
       << p.wakes << ',' << p.evictions << ',' << p.coordinator_ticks << ','
       << p.cores_claimed << ',' << p.cores_reclaimed << ','
       << p.exec_time_us << ',' << p.cache_penalty_us << ','
       << p.steal_overhead_us << '\n';
  }
}

void write_timeline_csv(std::ostream& os, const sim::SimResult& result) {
  os << "t_us";
  for (const auto& p : result.programs) os << ",active_" << p.name;
  os << ",free_cores\n";
  for (const auto& s : result.timeline) {
    os << s.t_us;
    for (unsigned a : s.active_workers) os << ',' << a;
    os << ',' << s.free_cores << '\n';
  }
}

void write_cores_csv(std::ostream& os, const sim::SimResult& result) {
  os << "core,busy_us,exec_us\n";
  for (std::size_t c = 0; c < result.core_busy_us.size(); ++c) {
    os << c << ',' << result.core_busy_us[c] << ',' << result.core_exec_us[c]
       << '\n';
  }
}

std::string export_result(const std::string& dir, const std::string& stem,
                          const sim::SimResult& result) {
  const std::string base = dir + "/" + stem;
  struct Job {
    const char* suffix;
    void (*writer)(std::ostream&, const sim::SimResult&);
  };
  for (const Job& job : {Job{"_programs.csv", write_programs_csv},
                         Job{"_timeline.csv", write_timeline_csv},
                         Job{"_cores.csv", write_cores_csv}}) {
    const std::string path = base + job.suffix;
    std::ofstream out(path);
    if (!out) return "cannot open " + path;
    job.writer(out, result);
    if (!out) return "write failed for " + path;
  }
  return {};
}

}  // namespace dws::harness
