#include "harness/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dws::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace dws::harness
