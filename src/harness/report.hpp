// Fixed-width table and CSV emitters for the bench binaries: every
// figure-reproduction binary prints the same rows the paper plots.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dws::harness {

/// Simple column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Format a double with the given precision.
  static std::string num(double v, int precision = 3);

  /// Write the table (with a separator under the header) to `os`.
  void print(std::ostream& os) const;

  /// Comma-separated form (header + rows), for machine consumption.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dws::harness
