#include "harness/mixes.hpp"

#include <stdexcept>

namespace dws::harness {

const char* app_name(unsigned table2_id) {
  switch (table2_id) {
    case 1: return "FFT";
    case 2: return "PNN";
    case 3: return "Cholesky";
    case 4: return "LU";
    case 5: return "GE";
    case 6: return "Heat";
    case 7: return "SOR";
    case 8: return "Mergesort";
    default: throw std::out_of_range("Table-2 id must be 1..8");
  }
}

std::string mix_label(std::pair<unsigned, unsigned> mix) {
  return "(" + std::to_string(mix.first) + ", " + std::to_string(mix.second) +
         ")";
}

}  // namespace dws::harness
